package experiments

import (
	"fmt"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/field"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/packetsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/storage"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// Extension experiments: studies beyond the paper's figures that the
// repository's extra substrates enable. E1 adds the storage tier behind
// the I/O nodes, E2 varies the rank mapping, E3 demonstrates the paper's
// pipelining future work, E4 cross-validates the flow-level model
// against the packet-level simulator.

// ExtStorageResult compares /dev/null against a GPFS-like tier for both
// aggregation approaches.
type ExtStorageResult struct {
	Cores   int
	BurstGB float64
	// Rows: [devnull, ample servers, scarce servers] x [ours, default].
	Rows []ExtStorageRow
}

// ExtStorageRow is one sink configuration's outcome.
type ExtStorageRow struct {
	Sink        string
	OursGBps    float64
	DefaultGBps float64
}

// ExtStorage runs E1.
func ExtStorage(opt Options) (ExtStorageResult, error) {
	p := opt.params()
	cores := 32768
	if opt.Quick {
		cores = 8192
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return ExtStorageResult{}, err
	}
	res := ExtStorageResult{Cores: cores}

	type sinkCase struct {
		name    string
		servers int // 0 = devnull
	}
	nio := 0
	{
		rig, err := newIORig(shape, 16, p)
		if err != nil {
			return res, err
		}
		nio = rig.ios.NumIONodes()
	}
	cases := []sinkCase{
		{"devnull (paper)", 0},
		{"GPFS, ample servers", nio * 2},
		{"GPFS, scarce servers", maxInt(1, nio/4)},
	}
	for _, sc := range cases {
		// A fresh rig per case: sinks register extra links.
		rig, err := newIORig(shape, 16, p)
		if err != nil {
			return res, err
		}
		data := workload.Uniform(rig.job.NumRanks(), eightMB, int64(cores))
		res.BurstGB = float64(workload.Total(data)) / 1e9
		var sink ionet.Sink
		if sc.servers == 0 {
			sink = ionet.DevNull{S: rig.ios, ForwardDelay: p.ProxyForwardOverhead}
		} else {
			cfg := storage.DefaultConfig()
			cfg.Servers = sc.servers
			st, err := storage.Build(rig.net, rig.ios, cfg)
			if err != nil {
				return res, err
			}
			sink = st
		}
		row := ExtStorageRow{Sink: sc.name}
		row.OursGBps, err = aggThroughputSink(rig, data, true, sink)
		if err != nil {
			return res, err
		}
		row.DefaultGBps, err = aggThroughputSink(rig, data, false, sink)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// aggThroughputSink is aggThroughput with an explicit sink.
func aggThroughputSink(rig *ioRig, data []int64, ours bool, sink ionet.Sink) (float64, error) {
	e, err := rig.engine()
	if err != nil {
		return 0, err
	}
	var total int64
	var meta float64
	if ours {
		pl, err := core.NewAggPlanner(rig.ios, rig.job, rig.p, core.DefaultAggConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.PlanWithSink(e, data, sink)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	} else {
		pl, err := collio.NewPlanner(rig.ios, rig.job, rig.p, collio.DefaultConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.PlanWithSink(e, data, sink)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	}
	mk, err := e.Run()
	if err != nil {
		return 0, err
	}
	return float64(total) / (float64(mk) + meta) / 1e9, nil
}

// ExtMappingResult compares rank mappings: the same rank-indexed burst
// under the default block mapping versus a round-robin mapping.
type ExtMappingResult struct {
	Cores int
	Rows  []ExtMappingRow
}

// ExtMappingRow is one (mapping, approach) outcome.
type ExtMappingRow struct {
	Mapping  string
	Workload string
	OursGBps float64
	DefGBps  float64
}

// ExtMapping runs E2 with the HACC window burst, whose placement is the
// most mapping-sensitive (contiguous ranks).
func ExtMapping(opt Options) (ExtMappingResult, error) {
	p := opt.params()
	cores := 16384
	if opt.Quick {
		cores = 8192
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return ExtMappingResult{}, err
	}
	res := ExtMappingResult{Cores: cores}
	for _, mapping := range []mpisim.MapOrder{"ABCDET", "TABCDE"} {
		tor, err := torus.New(shape)
		if err != nil {
			return res, err
		}
		net := netsim.NewNetwork(tor, p.LinkBandwidth)
		ios, err := ionet.Build(net, ionet.DefaultConfig())
		if err != nil {
			return res, err
		}
		job, err := mpisim.NewJobWithMapping(tor, 16, mapping)
		if err != nil {
			return res, err
		}
		rig := &ioRig{tor: tor, net: net, ios: ios, job: job, p: p}
		data := workload.HACC(job.NumRanks(), haccParticlesPerWriter)
		row := ExtMappingRow{Mapping: string(mapping), Workload: "hacc"}
		row.OursGBps, err = aggThroughput(rig, data, true)
		if err != nil {
			return res, err
		}
		row.DefGBps, err = aggThroughput(rig, data, false)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ExtPipelineResult demonstrates the paper's future-work pipelining:
// with chunked store-and-forward, k=2 proxies beat direct transfer.
type ExtPipelineResult struct {
	Shape   torus.Shape
	Direct  Curve
	PlainK2 Curve
	PipedK2 Curve
	PipedK4 Curve
}

// ExtPipeline runs E3 on the Fig. 5 geometry.
func ExtPipeline(opt Options) (ExtPipelineResult, error) {
	p := opt.params()
	shape := torus.Shape{2, 2, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return ExtPipelineResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	res := ExtPipelineResult{
		Shape:   shape,
		Direct:  Curve{Name: "direct"},
		PlainK2: Curve{Name: "k=2 plain"},
		PipedK2: Curve{Name: "k=2 pipelined"},
		PipedK4: Curve{Name: "k=4 pipelined"},
	}
	mk := func(k int, pipeline bool) core.ProxyConfig {
		cfg := core.DefaultProxyConfig()
		cfg.Threshold = 0
		cfg.MinProxies = 1
		cfg.MaxProxies = k
		cfg.Pipeline = pipeline
		cfg.ChunkBytes = 1 << 20
		return cfg
	}
	directCfg := core.DefaultProxyConfig()
	directCfg.Threshold = 1 << 62
	for _, size := range messageSizes(opt.Quick) {
		d, _, err := runPair(tor, p, directCfg, src, dst, size)
		if err != nil {
			return res, err
		}
		plain2, _, err := runPair(tor, p, mk(2, false), src, dst, size)
		if err != nil {
			return res, err
		}
		piped2, _, err := runPair(tor, p, mk(2, true), src, dst, size)
		if err != nil {
			return res, err
		}
		piped4, _, err := runPair(tor, p, mk(4, true), src, dst, size)
		if err != nil {
			return res, err
		}
		res.Direct.Points = append(res.Direct.Points, CurvePoint{size, d / 1e9})
		res.PlainK2.Points = append(res.PlainK2.Points, CurvePoint{size, plain2 / 1e9})
		res.PipedK2.Points = append(res.PipedK2.Points, CurvePoint{size, piped2 / 1e9})
		res.PipedK4.Points = append(res.PipedK4.Points, CurvePoint{size, piped4 / 1e9})
	}
	return res, nil
}

// ExtValidationResult cross-validates flow-level vs packet-level models.
type ExtValidationResult struct {
	Rows []ExtValidationRow
}

// ExtValidationRow is one scenario's agreement check.
type ExtValidationRow struct {
	Scenario   string
	Bytes      int64
	FlowGBps   float64
	PacketGBps float64
	// DiffPct is |flow - packet| / flow in percent.
	DiffPct float64
}

// ExtValidation runs E4 on the Fig. 5 geometry.
func ExtValidation(opt Options) (ExtValidationResult, error) {
	flowP := opt.params()
	pktP := packetsim.DefaultParams()
	tor, err := torus.New(torus.Shape{2, 2, 4, 4, 2})
	if err != nil {
		return ExtValidationResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	cfg := core.DefaultProxyConfig()
	cfg.Threshold = 0
	cfg.MinProxies = 1
	cfg.MaxProxies = 4
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		return ExtValidationResult{}, err
	}
	proxies := pl.SelectProxies(src, dst)

	sizes := []int64{1 << 20, 8 << 20}
	if !opt.Quick {
		sizes = append(sizes, 32<<20)
	}
	var res ExtValidationResult
	for _, proxied := range []bool{false, true} {
		for _, bytes := range sizes {
			// Flow model.
			e, err := netsim.NewEngine(netsim.NewNetwork(tor, flowP.LinkBandwidth), flowP)
			if err != nil {
				return res, err
			}
			if !proxied {
				e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
			} else {
				per := bytes / int64(len(proxies))
				for _, pr := range proxies {
					l1 := e.Submit(netsim.FlowSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
					e.Submit(netsim.FlowSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
						DependsOn: []netsim.FlowID{l1}, ExtraDelay: flowP.ProxyForwardOverhead})
				}
			}
			fmk, err := e.Run()
			if err != nil {
				return res, err
			}
			// Packet model.
			s, err := packetsim.New(tor, pktP, 3)
			if err != nil {
				return res, err
			}
			if !proxied {
				s.Submit(packetsim.MessageSpec{Src: src, Dst: dst, Bytes: bytes, Zone: routing.ZoneDeterministic})
			} else {
				per := bytes / int64(len(proxies))
				for _, pr := range proxies {
					m1 := s.Submit(packetsim.MessageSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
					s.Submit(packetsim.MessageSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
						DependsOn: []packetsim.MessageID{m1}, ExtraDelay: pktP.SenderOverhead + 10e-6})
				}
			}
			pmk, err := s.Run()
			if err != nil {
				return res, err
			}
			fth := netsim.Throughput(bytes, fmk) / 1e9
			pth := packetsim.Throughput(bytes, pmk) / 1e9
			name := "direct"
			if proxied {
				name = "4 proxies"
			}
			diff := (fth - pth) / fth * 100
			if diff < 0 {
				diff = -diff
			}
			res.Rows = append(res.Rows, ExtValidationRow{
				Scenario: name, Bytes: bytes,
				FlowGBps: fth, PacketGBps: pth, DiffPct: diff,
			})
		}
	}
	return res, nil
}

// ExtInsituResult runs the Fig. 10 comparison on bursts produced by a
// real in-situ analysis (threshold extraction over a synthetic field)
// instead of synthetic per-rank size distributions.
type ExtInsituResult struct {
	Rows []ExtInsituRow
}

// ExtInsituRow is one scale's outcome.
type ExtInsituRow struct {
	Cores         int
	BurstGB       float64
	RanksWithData float64 // fraction
	OursGBps      float64
	DefaultGBps   float64
}

// insituRankGrids factorizes the rank count into the 3-D process grids
// the field decomposition uses.
var insituRankGrids = map[int][3]int{
	2048:  {16, 16, 8},
	8192:  {32, 16, 16},
	32768: {32, 32, 32},
}

// ExtInsitu runs E5: organically sparse bursts from threshold analysis.
func ExtInsitu(opt Options) (ExtInsituResult, error) {
	p := opt.params()
	scales := []int{2048, 8192, 32768}
	if opt.Quick {
		scales = []int{2048}
	}
	const subBlockBytes = 32 << 10
	const threshold = 0.35
	var res ExtInsituResult
	for _, cores := range scales {
		shape, err := ShapeForCores(cores)
		if err != nil {
			return res, err
		}
		rig, err := newIORig(shape, 16, p)
		if err != nil {
			return res, err
		}
		g := insituRankGrids[cores]
		grid, err := field.NewGrid(6*g[0], 6*g[1], 6*g[2], g[0], g[1], g[2])
		if err != nil {
			return res, err
		}
		fld, err := field.Synthesize(grid, 6, int64(cores))
		if err != nil {
			return res, err
		}
		data := fld.ExtractSizes(threshold, subBlockBytes)
		if len(data) != rig.job.NumRanks() {
			return res, fmt.Errorf("experiments: field grid yields %d ranks, job has %d", len(data), rig.job.NumRanks())
		}
		withData, _ := field.Sparsity(data, grid.CellsPerRank(), subBlockBytes)
		row := ExtInsituRow{
			Cores:         cores,
			BurstGB:       float64(workload.Total(data)) / 1e9,
			RanksWithData: withData,
		}
		if row.OursGBps, err = aggThroughput(rig, data, true); err != nil {
			return res, err
		}
		if row.DefaultGBps, err = aggThroughput(rig, data, false); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
