package experiments

import (
	"fmt"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/field"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/packetsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/storage"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// Extension experiments: studies beyond the paper's figures that the
// repository's extra substrates enable. E1 adds the storage tier behind
// the I/O nodes, E2 varies the rank mapping, E3 demonstrates the paper's
// pipelining future work, E4 cross-validates the flow-level model
// against the packet-level simulator.

// ExtStorageResult compares /dev/null against a GPFS-like tier for both
// aggregation approaches.
type ExtStorageResult struct {
	Cores   int
	BurstGB float64
	// Rows: [devnull, ample servers, scarce servers] x [ours, default].
	Rows []ExtStorageRow
}

// ExtStorageRow is one sink configuration's outcome.
type ExtStorageRow struct {
	Sink        string
	OursGBps    float64
	DefaultGBps float64
}

// ExtStorage runs E1.
func ExtStorage(opt Options) (ExtStorageResult, error) {
	p := opt.params()
	cores := 32768
	rpn := 16
	if opt.Quick {
		// 4,096 cores is the smallest scale with more than one pset, so
		// the server-scarcity contrast survives while the smoke run
		// stays fast. Ranks-per-node drops to 4: flow count — not byte
		// volume — is what the flow-level engine pays for, and six
		// 4,096-rank aggregations dominated the whole quick sweep.
		cores = 4096
		rpn = 4
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return ExtStorageResult{}, err
	}
	res := ExtStorageResult{Cores: cores}

	type sinkCase struct {
		name    string
		servers int // 0 = devnull
	}
	nio := 0
	{
		probe, err := newIORig(shape, rpn, p, opt.EngineHook)
		if err != nil {
			return res, err
		}
		nio = probe.ios.NumIONodes()
		data := workload.Uniform(probe.job.NumRanks(), eightMB, int64(cores))
		res.BurstGB = float64(workload.Total(data)) / 1e9
	}
	cases := []sinkCase{
		{"devnull (paper)", 0},
		{"GPFS, ample servers", nio * 2},
		{"GPFS, scarce servers", maxInt(1, nio/4)},
	}
	// Six self-contained points: (sink case) x (ours, default). Each
	// builds its own rig — sinks register extra links on the network —
	// and regenerates the same seeded burst.
	vals := make([]float64, len(cases)*2)
	err = forEachPoint(opt, len(vals), func(i int) error {
		sc := cases[i/2]
		rig, err := newIORig(shape, rpn, p, opt.EngineHook)
		if err != nil {
			return err
		}
		data := workload.Uniform(rig.job.NumRanks(), eightMB, int64(cores))
		var sink ionet.Sink
		if sc.servers == 0 {
			sink = ionet.DevNull{S: rig.ios, ForwardDelay: p.ProxyForwardOverhead}
		} else {
			cfg := storage.DefaultConfig()
			cfg.Servers = sc.servers
			st, err := storage.Build(rig.net, rig.ios, cfg)
			if err != nil {
				return err
			}
			sink = st
		}
		gbps, err := aggThroughputSink(rig, data, i%2 == 0, sink)
		if err != nil {
			return err
		}
		vals[i] = gbps
		return nil
	})
	if err != nil {
		return res, err
	}
	for ci, sc := range cases {
		res.Rows = append(res.Rows, ExtStorageRow{
			Sink:        sc.name,
			OursGBps:    vals[ci*2],
			DefaultGBps: vals[ci*2+1],
		})
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// aggThroughputSink is aggThroughput with an explicit sink.
func aggThroughputSink(rig *ioRig, data []int64, ours bool, sink ionet.Sink) (float64, error) {
	e, err := rig.engine()
	if err != nil {
		return 0, err
	}
	var total int64
	var meta float64
	if ours {
		pl, err := core.NewAggPlanner(rig.ios, rig.job, rig.p, core.DefaultAggConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.PlanWithSink(e, data, sink)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	} else {
		pl, err := collio.NewPlanner(rig.ios, rig.job, rig.p, collio.DefaultConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.PlanWithSink(e, data, sink)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	}
	mk, err := e.Run()
	if err != nil {
		return 0, err
	}
	addSimTime(mk)
	return float64(total) / (float64(mk) + meta) / 1e9, nil
}

// ExtMappingResult compares rank mappings: the same rank-indexed burst
// under the default block mapping versus a round-robin mapping.
type ExtMappingResult struct {
	Cores int
	Rows  []ExtMappingRow
}

// ExtMappingRow is one (mapping, approach) outcome.
type ExtMappingRow struct {
	Mapping  string
	Workload string
	OursGBps float64
	DefGBps  float64
}

// ExtMapping runs E2 with the HACC window burst, whose placement is the
// most mapping-sensitive (contiguous ranks).
func ExtMapping(opt Options) (ExtMappingResult, error) {
	p := opt.params()
	cores := 16384
	if opt.Quick {
		cores = 8192
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return ExtMappingResult{}, err
	}
	res := ExtMappingResult{Cores: cores}
	mappings := []mpisim.MapOrder{"ABCDET", "TABCDE"}
	// Four self-contained points: (mapping) x (ours, default), each with
	// its own mapped rig.
	vals := make([]float64, len(mappings)*2)
	err = forEachPoint(opt, len(vals), func(i int) error {
		mapping := mappings[i/2]
		tor, err := torus.New(shape)
		if err != nil {
			return err
		}
		net := netsim.NewNetwork(tor, p.LinkBandwidth)
		ios, err := ionet.Build(net, ionet.DefaultConfig())
		if err != nil {
			return err
		}
		job, err := mpisim.NewJobWithMapping(tor, 16, mapping)
		if err != nil {
			return err
		}
		rig := &ioRig{tor: tor, net: net, ios: ios, job: job, p: p}
		data := workload.HACC(job.NumRanks(), haccParticlesPerWriter)
		gbps, err := aggThroughput(rig, data, i%2 == 0)
		if err != nil {
			return err
		}
		vals[i] = gbps
		return nil
	})
	if err != nil {
		return res, err
	}
	for mi, mapping := range mappings {
		res.Rows = append(res.Rows, ExtMappingRow{
			Mapping:  string(mapping),
			Workload: "hacc",
			OursGBps: vals[mi*2],
			DefGBps:  vals[mi*2+1],
		})
	}
	return res, nil
}

// ExtPipelineResult demonstrates the paper's future-work pipelining:
// with chunked store-and-forward, k=2 proxies beat direct transfer.
type ExtPipelineResult struct {
	Shape   torus.Shape
	Direct  Curve
	PlainK2 Curve
	PipedK2 Curve
	PipedK4 Curve
}

// ExtPipeline runs E3 on the Fig. 5 geometry.
func ExtPipeline(opt Options) (ExtPipelineResult, error) {
	p := opt.params()
	shape := torus.Shape{2, 2, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return ExtPipelineResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	res := ExtPipelineResult{
		Shape:   shape,
		Direct:  Curve{Name: "direct"},
		PlainK2: Curve{Name: "k=2 plain"},
		PipedK2: Curve{Name: "k=2 pipelined"},
		PipedK4: Curve{Name: "k=4 pipelined"},
	}
	mk := func(k int, pipeline bool) core.ProxyConfig {
		cfg := core.DefaultProxyConfig()
		cfg.Threshold = 0
		cfg.MinProxies = 1
		cfg.MaxProxies = k
		cfg.Pipeline = pipeline
		cfg.ChunkBytes = 1 << 20
		return cfg
	}
	directCfg := core.DefaultProxyConfig()
	directCfg.Threshold = 1 << 62
	sizes := messageSizes(opt.Quick)
	if opt.Quick {
		// The 64 MB point dominates the quick sweep (pipelined k=4 at 1 MB
		// chunks is hundreds of dependent flows); the remaining sizes keep
		// the pipelining crossover visible.
		sizes = []int64{16 << 10, 256 << 10, 4 << 20}
	}
	// Four configurations per size, flattened into independent points.
	cfgs := []core.ProxyConfig{directCfg, mk(2, false), mk(2, true), mk(4, true)}
	vals := make([]float64, len(sizes)*len(cfgs))
	err = forEachPoint(opt, len(vals), func(i int) error {
		size := sizes[i/len(cfgs)]
		th, _, err := runPair(tor, p, cfgs[i%len(cfgs)], src, dst, size, opt.EngineHook)
		if err != nil {
			return err
		}
		vals[i] = th
		return nil
	})
	if err != nil {
		return res, err
	}
	for si, size := range sizes {
		res.Direct.Points = append(res.Direct.Points, CurvePoint{size, vals[si*4+0] / 1e9})
		res.PlainK2.Points = append(res.PlainK2.Points, CurvePoint{size, vals[si*4+1] / 1e9})
		res.PipedK2.Points = append(res.PipedK2.Points, CurvePoint{size, vals[si*4+2] / 1e9})
		res.PipedK4.Points = append(res.PipedK4.Points, CurvePoint{size, vals[si*4+3] / 1e9})
	}
	return res, nil
}

// ExtValidationResult cross-validates flow-level vs packet-level models.
type ExtValidationResult struct {
	Rows []ExtValidationRow
}

// ExtValidationRow is one scenario's agreement check.
type ExtValidationRow struct {
	Scenario   string
	Bytes      int64
	FlowGBps   float64
	PacketGBps float64
	// DiffPct is |flow - packet| / flow in percent.
	DiffPct float64
}

// ExtValidation runs E4 on the Fig. 5 geometry.
func ExtValidation(opt Options) (ExtValidationResult, error) {
	flowP := opt.params()
	pktP := packetsim.DefaultParams()
	tor, err := torus.New(torus.Shape{2, 2, 4, 4, 2})
	if err != nil {
		return ExtValidationResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	cfg := core.DefaultProxyConfig()
	cfg.Threshold = 0
	cfg.MinProxies = 1
	cfg.MaxProxies = 4
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		return ExtValidationResult{}, err
	}
	proxies := pl.SelectProxies(src, dst)

	sizes := []int64{1 << 20, 8 << 20, 32 << 20}
	if opt.Quick {
		// Packet-level cost scales with bytes simulated; a single 1 MB
		// point per scenario keeps the cross-model agreement check alive
		// in the smoke run.
		sizes = []int64{1 << 20}
	}
	var res ExtValidationResult
	rows := make([]ExtValidationRow, 2*len(sizes))
	err = forEachPoint(opt, len(rows), func(i int) error {
		proxied := i/len(sizes) == 1
		bytes := sizes[i%len(sizes)]
		// Flow model.
		e, err := newEngine(tor, flowP, opt.EngineHook)
		if err != nil {
			return err
		}
		if !proxied {
			e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
		} else {
			per := bytes / int64(len(proxies))
			for _, pr := range proxies {
				l1 := e.Submit(netsim.FlowSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
				e.Submit(netsim.FlowSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
					DependsOn: []netsim.FlowID{l1}, ExtraDelay: flowP.ProxyForwardOverhead})
			}
		}
		fmk, err := e.Run()
		if err != nil {
			return err
		}
		addSimTime(fmk)
		// Packet model.
		s, err := packetsim.New(tor, pktP, 3)
		if err != nil {
			return err
		}
		if !proxied {
			s.Submit(packetsim.MessageSpec{Src: src, Dst: dst, Bytes: bytes, Zone: routing.ZoneDeterministic})
		} else {
			per := bytes / int64(len(proxies))
			for _, pr := range proxies {
				m1 := s.Submit(packetsim.MessageSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
				s.Submit(packetsim.MessageSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
					DependsOn: []packetsim.MessageID{m1}, ExtraDelay: pktP.SenderOverhead + 10e-6})
			}
		}
		pmk, err := s.Run()
		if err != nil {
			return err
		}
		fth := netsim.Throughput(bytes, fmk) / 1e9
		pth := packetsim.Throughput(bytes, pmk) / 1e9
		name := "direct"
		if proxied {
			name = "4 proxies"
		}
		diff := (fth - pth) / fth * 100
		if diff < 0 {
			diff = -diff
		}
		rows[i] = ExtValidationRow{
			Scenario: name, Bytes: bytes,
			FlowGBps: fth, PacketGBps: pth, DiffPct: diff,
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// ExtInsituResult runs the Fig. 10 comparison on bursts produced by a
// real in-situ analysis (threshold extraction over a synthetic field)
// instead of synthetic per-rank size distributions.
type ExtInsituResult struct {
	Rows []ExtInsituRow
}

// ExtInsituRow is one scale's outcome.
type ExtInsituRow struct {
	Cores         int
	BurstGB       float64
	RanksWithData float64 // fraction
	OursGBps      float64
	DefaultGBps   float64
}

// insituRankGrids factorizes the rank count into the 3-D process grids
// the field decomposition uses.
var insituRankGrids = map[int][3]int{
	2048:  {16, 16, 8},
	8192:  {32, 16, 16},
	32768: {32, 32, 32},
}

// ExtInsitu runs E5: organically sparse bursts from threshold analysis.
func ExtInsitu(opt Options) (ExtInsituResult, error) {
	p := opt.params()
	scales := []int{2048, 8192, 32768}
	if opt.Quick {
		scales = []int{2048}
	}
	const subBlockBytes = 32 << 10
	const threshold = 0.35
	var res ExtInsituResult
	// Two self-contained points per scale: (ours, default), each with its
	// own rig and its own deterministic field synthesis.
	rows := make([]ExtInsituRow, len(scales)*2)
	err := forEachPoint(opt, len(rows), func(i int) error {
		cores := scales[i/2]
		shape, err := ShapeForCores(cores)
		if err != nil {
			return err
		}
		rig, err := newIORig(shape, 16, p, opt.EngineHook)
		if err != nil {
			return err
		}
		g := insituRankGrids[cores]
		// Cells per rank: 6^3 in the full run; 5^3 in quick mode, where
		// synthesizing the field twice (ours + default point) would
		// otherwise dominate the runner.
		mult := 6
		if opt.Quick {
			mult = 5
		}
		grid, err := field.NewGrid(mult*g[0], mult*g[1], mult*g[2], g[0], g[1], g[2])
		if err != nil {
			return err
		}
		fld, err := field.Synthesize(grid, 6, int64(cores))
		if err != nil {
			return err
		}
		data := fld.ExtractSizes(threshold, subBlockBytes)
		if len(data) != rig.job.NumRanks() {
			return fmt.Errorf("experiments: field grid yields %d ranks, job has %d", len(data), rig.job.NumRanks())
		}
		withData, _ := field.Sparsity(data, grid.CellsPerRank(), subBlockBytes)
		row := ExtInsituRow{
			Cores:         cores,
			BurstGB:       float64(workload.Total(data)) / 1e9,
			RanksWithData: withData,
		}
		gbps, err := aggThroughput(rig, data, i%2 == 0)
		if err != nil {
			return err
		}
		if i%2 == 0 {
			row.OursGBps = gbps
		} else {
			row.DefaultGBps = gbps
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	for ci := range scales {
		row := rows[ci*2]
		row.DefaultGBps = rows[ci*2+1].DefaultGBps
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
