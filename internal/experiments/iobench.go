package experiments

import (
	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/workload"
)

const eightMB = 8 << 20

// Fig8 reproduces the Pattern 1 histogram: 1,024 ranks with sizes drawn
// uniformly from [0, 8MB].
func Fig8(seed int64) workload.Histogram {
	return workload.NewHistogram(workload.Uniform(1024, eightMB, seed), 16, eightMB)
}

// Fig9 reproduces the Pattern 2 histogram: 1,024 ranks with
// Pareto-distributed sizes in [0, 8MB].
func Fig9(seed int64) workload.Histogram {
	return workload.NewHistogram(workload.Pattern2(1024, eightMB, seed), 16, eightMB)
}

// ScalePoint is one weak-scaling sample.
type ScalePoint struct {
	Cores int
	GBps  float64
}

// ScaleCurve is a named weak-scaling series.
type ScaleCurve struct {
	Name   string
	Points []ScalePoint
}

// Fig10Result reproduces "Aggregation throughputs on Mira": weak scaling
// of the aggregation throughput to the I/O nodes for the two sparse
// patterns, topology-aware dynamic aggregation versus default MPI
// collective I/O.
type Fig10Result struct {
	OursP1    ScaleCurve
	OursP2    ScaleCurve
	DefaultP1 ScaleCurve
	DefaultP2 ScaleCurve
}

// fig10Scales trims the sweep in quick mode.
func fig10Scales(quick bool) []int {
	if quick {
		return []int{2048, 8192}
	}
	out := make([]int, 0, len(WeakScalingShapes))
	for _, ws := range WeakScalingShapes {
		out = append(out, ws.Cores)
	}
	return out
}

// aggThroughput runs one aggregation burst and returns GB/s including
// metadata costs.
func aggThroughput(rig *ioRig, data []int64, ours bool) (float64, error) {
	e, err := rig.engine()
	if err != nil {
		return 0, err
	}
	var total int64
	var meta float64
	if ours {
		pl, err := core.NewAggPlanner(rig.ios, rig.job, rig.p, core.DefaultAggConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	} else {
		pl, err := collio.NewPlanner(rig.ios, rig.job, rig.p, collio.DefaultConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	}
	mk, err := e.Run()
	if err != nil {
		return 0, err
	}
	return float64(total) / (float64(mk) + meta) / 1e9, nil
}

// Fig10 runs the weak-scaling aggregation comparison.
func Fig10(opt Options) (Fig10Result, error) {
	p := opt.params()
	res := Fig10Result{
		OursP1:    ScaleCurve{Name: "Our approach: Pattern 1"},
		OursP2:    ScaleCurve{Name: "Our approach: Pattern 2"},
		DefaultP1: ScaleCurve{Name: "MPI Collective IO: Pattern 1"},
		DefaultP2: ScaleCurve{Name: "MPI Collective IO: Pattern 2"},
	}
	for _, cores := range fig10Scales(opt.Quick) {
		shape, err := ShapeForCores(cores)
		if err != nil {
			return res, err
		}
		rig, err := newIORig(shape, 16, p)
		if err != nil {
			return res, err
		}
		n := rig.job.NumRanks()
		p1 := workload.Uniform(n, eightMB, int64(cores))
		p2 := workload.Pattern2(n, eightMB, int64(cores)+1)
		for _, run := range []struct {
			data  []int64
			ours  bool
			curve *ScaleCurve
		}{
			{p1, true, &res.OursP1},
			{p2, true, &res.OursP2},
			{p1, false, &res.DefaultP1},
			{p2, false, &res.DefaultP2},
		} {
			gbps, err := aggThroughput(rig, run.data, run.ours)
			if err != nil {
				return res, err
			}
			run.curve.Points = append(run.curve.Points, ScalePoint{cores, gbps})
		}
	}
	return res, nil
}

// Fig11Result reproduces the HACC I/O application benchmark: write
// throughput to the I/O nodes, customized aggregator selection versus
// default MPI collective I/O, 8,192 to 131,072 cores.
type Fig11Result struct {
	Ours    ScaleCurve
	Default ScaleCurve
	// BurstGB records the burst size at each scale.
	BurstGB []float64
}

// haccParticlesPerWriter weak-scales the paper's 2 GB - 85 GB burst
// range: each writer holds ~6.5 MB of particle records.
const haccParticlesPerWriter = 171_000

func fig11Scales(quick bool) []int {
	if quick {
		return []int{8192}
	}
	return []int{8192, 16384, 32768, 65536, 131072}
}

// Fig11 runs the HACC I/O comparison.
func Fig11(opt Options) (Fig11Result, error) {
	p := opt.params()
	res := Fig11Result{
		Ours:    ScaleCurve{Name: "Customized selection of aggregators"},
		Default: ScaleCurve{Name: "Default MPI collective I/O"},
	}
	for _, cores := range fig11Scales(opt.Quick) {
		shape, err := ShapeForCores(cores)
		if err != nil {
			return res, err
		}
		rig, err := newIORig(shape, 16, p)
		if err != nil {
			return res, err
		}
		data := workload.HACC(rig.job.NumRanks(), haccParticlesPerWriter)
		res.BurstGB = append(res.BurstGB, float64(workload.Total(data))/1e9)
		ours, err := aggThroughput(rig, data, true)
		if err != nil {
			return res, err
		}
		def, err := aggThroughput(rig, data, false)
		if err != nil {
			return res, err
		}
		res.Ours.Points = append(res.Ours.Points, ScalePoint{cores, ours})
		res.Default.Points = append(res.Default.Points, ScalePoint{cores, def})
	}
	return res, nil
}
