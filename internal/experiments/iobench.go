package experiments

import (
	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/workload"
)

const eightMB = 8 << 20

// Fig8 reproduces the Pattern 1 histogram: 1,024 ranks with sizes drawn
// uniformly from [0, 8MB].
func Fig8(seed int64) workload.Histogram {
	return workload.NewHistogram(workload.Uniform(1024, eightMB, seed), 16, eightMB)
}

// Fig9 reproduces the Pattern 2 histogram: 1,024 ranks with
// Pareto-distributed sizes in [0, 8MB].
func Fig9(seed int64) workload.Histogram {
	return workload.NewHistogram(workload.Pattern2(1024, eightMB, seed), 16, eightMB)
}

// ScalePoint is one weak-scaling sample.
type ScalePoint struct {
	Cores int
	GBps  float64
}

// ScaleCurve is a named weak-scaling series.
type ScaleCurve struct {
	Name   string
	Points []ScalePoint
}

// Fig10Result reproduces "Aggregation throughputs on Mira": weak scaling
// of the aggregation throughput to the I/O nodes for the two sparse
// patterns, topology-aware dynamic aggregation versus default MPI
// collective I/O.
type Fig10Result struct {
	OursP1    ScaleCurve
	OursP2    ScaleCurve
	DefaultP1 ScaleCurve
	DefaultP2 ScaleCurve
}

// fig10Scales trims the sweep in quick mode: two scales keep the
// weak-scaling shape visible while the smoke run stays in the hundreds
// of milliseconds.
func fig10Scales(quick bool) []int {
	if quick {
		return []int{2048, 4096}
	}
	out := make([]int, 0, len(WeakScalingShapes))
	for _, ws := range WeakScalingShapes {
		out = append(out, ws.Cores)
	}
	return out
}

// aggThroughput runs one aggregation burst and returns GB/s including
// metadata costs.
func aggThroughput(rig *ioRig, data []int64, ours bool) (float64, error) {
	e, err := rig.engine()
	if err != nil {
		return 0, err
	}
	var total int64
	var meta float64
	if ours {
		pl, err := core.NewAggPlanner(rig.ios, rig.job, rig.p, core.DefaultAggConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	} else {
		pl, err := collio.NewPlanner(rig.ios, rig.job, rig.p, collio.DefaultConfig())
		if err != nil {
			return 0, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return 0, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
	}
	mk, err := e.Run()
	if err != nil {
		return 0, err
	}
	addSimTime(mk)
	return float64(total) / (float64(mk) + meta) / 1e9, nil
}

// Fig10 runs the weak-scaling aggregation comparison.
func Fig10(opt Options) (Fig10Result, error) {
	p := opt.params()
	res := Fig10Result{
		OursP1:    ScaleCurve{Name: "Our approach: Pattern 1"},
		OursP2:    ScaleCurve{Name: "Our approach: Pattern 2"},
		DefaultP1: ScaleCurve{Name: "MPI Collective IO: Pattern 1"},
		DefaultP2: ScaleCurve{Name: "MPI Collective IO: Pattern 2"},
	}
	scales := fig10Scales(opt.Quick)
	// Four runs per scale — (ours, default) x (pattern 1, pattern 2) —
	// each a self-contained point with its own rig so every run can
	// proceed concurrently. Workload seeds depend only on the core count,
	// so regenerating per point reproduces the sequential inputs exactly.
	vals := make([]float64, len(scales)*4)
	err := forEachPoint(opt, len(vals), func(i int) error {
		cores := scales[i/4]
		run := i % 4 // 0: ours/P1, 1: ours/P2, 2: default/P1, 3: default/P2
		shape, err := ShapeForCores(cores)
		if err != nil {
			return err
		}
		rig, err := newIORig(shape, 16, p, opt.EngineHook)
		if err != nil {
			return err
		}
		n := rig.job.NumRanks()
		var data []int64
		if run%2 == 0 {
			data = workload.Uniform(n, eightMB, int64(cores))
		} else {
			data = workload.Pattern2(n, eightMB, int64(cores)+1)
		}
		gbps, err := aggThroughput(rig, data, run < 2)
		if err != nil {
			return err
		}
		vals[i] = gbps
		return nil
	})
	if err != nil {
		return res, err
	}
	for ci, cores := range scales {
		res.OursP1.Points = append(res.OursP1.Points, ScalePoint{cores, vals[ci*4+0]})
		res.OursP2.Points = append(res.OursP2.Points, ScalePoint{cores, vals[ci*4+1]})
		res.DefaultP1.Points = append(res.DefaultP1.Points, ScalePoint{cores, vals[ci*4+2]})
		res.DefaultP2.Points = append(res.DefaultP2.Points, ScalePoint{cores, vals[ci*4+3]})
	}
	return res, nil
}

// Fig11Result reproduces the HACC I/O application benchmark: write
// throughput to the I/O nodes, customized aggregator selection versus
// default MPI collective I/O, 8,192 to 131,072 cores.
type Fig11Result struct {
	Ours    ScaleCurve
	Default ScaleCurve
	// BurstGB records the burst size at each scale.
	BurstGB []float64
}

// haccParticlesPerWriter weak-scales the paper's 2 GB - 85 GB burst
// range: each writer holds ~6.5 MB of particle records.
const haccParticlesPerWriter = 171_000

func fig11Scales(quick bool) []int {
	if quick {
		return []int{8192}
	}
	return []int{8192, 16384, 32768, 65536, 131072, 262144}
}

// Fig11 runs the HACC I/O comparison.
func Fig11(opt Options) (Fig11Result, error) {
	p := opt.params()
	res := Fig11Result{
		Ours:    ScaleCurve{Name: "Customized selection of aggregators"},
		Default: ScaleCurve{Name: "Default MPI collective I/O"},
	}
	scales := fig11Scales(opt.Quick)
	type point struct{ gbps, burstGB float64 }
	vals := make([]point, len(scales)*2)
	err := forEachPoint(opt, len(vals), func(i int) error {
		cores := scales[i/2]
		shape, err := ShapeForCores(cores)
		if err != nil {
			return err
		}
		rig, err := newIORig(shape, 16, p, opt.EngineHook)
		if err != nil {
			return err
		}
		data := workload.HACC(rig.job.NumRanks(), haccParticlesPerWriter)
		gbps, err := aggThroughput(rig, data, i%2 == 0)
		if err != nil {
			return err
		}
		vals[i] = point{gbps, float64(workload.Total(data)) / 1e9}
		return nil
	})
	if err != nil {
		return res, err
	}
	for ci, cores := range scales {
		res.BurstGB = append(res.BurstGB, vals[ci*2].burstGB)
		res.Ours.Points = append(res.Ours.Points, ScalePoint{cores, vals[ci*2].gbps})
		res.Default.Points = append(res.Default.Points, ScalePoint{cores, vals[ci*2+1].gbps})
	}
	return res, nil
}
