package experiments

import (
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/faultinject"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// R1 is the resilience sweep: a fixed 64 MB transfer across the 128-node
// partition while a seeded targeted fault campaign fails an increasing
// number of links mid-transfer. Three strategies run against the same
// campaign: the default direct path (no recovery — a failure on its
// single route loses everything), the proxied transfer without recovery
// (failures cost exactly the pieces whose legs die), and the proxied
// transfer with the detect -> replan -> degrade loop (which must deliver
// every byte as long as the torus stays connected). The campaign pool is
// adversarial: it always includes a direct-route link first, then the
// rest of the direct route and the first hops of every initially
// selected proxy leg.

// r1Seed fixes the fault campaigns; the sweep is deterministic.
const r1Seed = 1971

// r1Window is the injection window: failures land inside the first
// transfer's flight time (64 MB at ~1.8 GB/s is ~36 ms).
const r1Window sim.Time = 20e-3

// R1Mode is one strategy's outcome at one sweep point.
type R1Mode struct {
	// DeliveredFrac is the fraction of requested bytes that reached the
	// destination.
	DeliveredFrac float64
	// GBps is delivered bytes over the time the last delivered byte
	// landed (0 when nothing arrived). For the recovery strategy the
	// denominator includes detection timeouts and backoff.
	GBps float64
	// Replans counts recovery waves (always 0 without recovery).
	Replans int
}

// R1Point is one sweep point: the same campaign run under each strategy.
type R1Point struct {
	FailedLinks int
	Direct      R1Mode
	ProxyNoRec  R1Mode
	ProxyRec    R1Mode
}

// R1Result is the full resilience sweep.
type R1Result struct {
	Shape  torus.Shape
	Bytes  int64
	Seed   int64
	Fails  []int
	Points []R1Point
}

// r1FailCounts returns the sweep's failed-link counts.
func r1FailCounts(quick bool) []int {
	if quick {
		return []int{0, 2, 8}
	}
	return []int{0, 1, 2, 4, 8, 16}
}

// r1Pool builds the adversarial link pool for one geometry: a mid-route
// direct link first (TargetedLinks guarantees pool[0] is always hit),
// then the rest of the direct route, then the first hop of every leg of
// every initially selected proxy.
func r1Pool(tor *torus.Torus, src, dst torus.NodeID, cfg core.ProxyConfig) []int {
	def := routing.DeterministicRoute(tor, src, dst)
	pool := []int{def.Links[len(def.Links)/2]}
	pool = append(pool, def.Links...)
	pl, err := core.NewPairPlanner(tor, cfg)
	if err == nil {
		for _, pr := range pl.SelectProxies(src, dst) {
			pool = append(pool, pr.Leg1.Links[0], pr.Leg2.Links[0])
		}
	}
	return pool
}

// r1Campaign builds the seeded campaign for one sweep point.
func r1Campaign(tor *torus.Torus, src, dst torus.NodeID, cfg core.ProxyConfig, fails int) *faultinject.Campaign {
	if fails == 0 {
		return &faultinject.Campaign{Name: "none", Seed: r1Seed}
	}
	pool := r1Pool(tor, src, dst, cfg)
	return faultinject.TargetedLinks(r1Seed+int64(fails), pool, fails, r1Window)
}

// deliveredOutcome tallies a batch run's finals: bytes landed and the
// landing time of the last of them.
func deliveredOutcome(e *netsim.Engine, finals []netsim.FlowID, pieces map[netsim.FlowID]int64) (delivered int64, last sim.Time) {
	for _, id := range finals {
		res := e.Result(id)
		if res.Done {
			delivered += pieces[id]
			if res.Completed > last {
				last = res.Completed
			}
		}
	}
	return delivered, last
}

func r1ModeResult(delivered, total int64, last sim.Duration, replans int) R1Mode {
	m := R1Mode{DeliveredFrac: float64(delivered) / float64(total), Replans: replans}
	if delivered > 0 && last > 0 {
		m.GBps = netsim.Throughput(delivered, last) / 1e9
	}
	return m
}

// r1Observe attaches the sweep recorder (when present) to a strategy
// engine and returns a flush that publishes the run's route-cache
// counters into the registry. Tracks are per point and strategy
// ("r1/fail8/recovery"), so parallel sweep points never share a track.
func r1Observe(rec *obs.Recorder, e *netsim.Engine, track string) (flush func()) {
	if rec == nil {
		return func() {}
	}
	e.SetSink(rec.EngineSink(track, nil))
	return func() {
		hits, misses, invals := e.Network().RouteCache().Counts()
		reg := rec.Registry()
		reg.Counter("routing/cache/hits").Add(int64(hits))
		reg.Counter("routing/cache/misses").Add(int64(misses))
		reg.Counter("routing/cache/invalidations").Add(int64(invals))
	}
}

// r1Direct runs the default single-path transfer under the campaign.
func r1Direct(tor *torus.Torus, p netsim.Params, c *faultinject.Campaign, src, dst torus.NodeID, bytes int64, rec *obs.Recorder, track string, hook func(*netsim.Engine)) (R1Mode, error) {
	e, err := newEngine(tor, p, hook)
	if err != nil {
		return R1Mode{}, err
	}
	defer r1Observe(rec, e, track)()
	id := e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes, Label: "r1/direct"})
	if err := c.Apply(e); err != nil {
		return R1Mode{}, err
	}
	if _, err := e.Run(); err != nil {
		return R1Mode{}, err
	}
	delivered, last := deliveredOutcome(e, []netsim.FlowID{id}, map[netsim.FlowID]int64{id: bytes})
	addSimTime(sim.Duration(last))
	return r1ModeResult(delivered, bytes, sim.Duration(last), 0), nil
}

// r1ProxyNoRecovery runs the paper's proxied transfer with no recovery:
// pieces whose legs cross a failed link abort and stay lost.
func r1ProxyNoRecovery(tor *torus.Torus, p netsim.Params, cfg core.ProxyConfig, c *faultinject.Campaign, src, dst torus.NodeID, bytes int64, rec *obs.Recorder, track string, hook func(*netsim.Engine)) (R1Mode, error) {
	e, err := newEngine(tor, p, hook)
	if err != nil {
		return R1Mode{}, err
	}
	defer r1Observe(rec, e, track)()
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		return R1Mode{}, err
	}
	plan, err := pl.PlanPair(e, src, dst, bytes)
	if err != nil {
		return R1Mode{}, err
	}
	if err := c.Apply(e); err != nil {
		return R1Mode{}, err
	}
	if _, err := e.Run(); err != nil {
		return R1Mode{}, err
	}
	pieces := make(map[netsim.FlowID]int64, len(plan.Final))
	if plan.Mode == core.Proxied {
		split := splitEven(bytes, len(plan.Final))
		for i, id := range plan.Final {
			pieces[id] = split[i]
		}
	} else {
		pieces[plan.Final[0]] = bytes
	}
	delivered, last := deliveredOutcome(e, plan.Final, pieces)
	addSimTime(sim.Duration(last))
	return r1ModeResult(delivered, bytes, sim.Duration(last), 0), nil
}

// splitEven mirrors core's piece split: near-equal with the remainder on
// the first pieces.
func splitEven(bytes int64, n int) []int64 {
	out := make([]int64, n)
	base := bytes / int64(n)
	rem := bytes - base*int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// r1ProxyRecovery runs the resilient transfer loop under the campaign.
func r1ProxyRecovery(tor *torus.Torus, p netsim.Params, cfg core.ProxyConfig, c *faultinject.Campaign, src, dst torus.NodeID, bytes int64, rec *obs.Recorder, track string, hook func(*netsim.Engine)) (R1Mode, error) {
	e, err := newEngine(tor, p, hook)
	if err != nil {
		return R1Mode{}, err
	}
	defer r1Observe(rec, e, track)()
	tr, err := core.NewTransport(tor, p, cfg)
	if err != nil {
		return R1Mode{}, err
	}
	if rec != nil {
		tr.SetRecorder(rec, track)
	}
	e.BeginInteractive()
	if err := c.Apply(e); err != nil {
		return R1Mode{}, err
	}
	// A cut torus or exhausted retries still reports partial bytes; the
	// sweep records the degraded point rather than failing.
	rep, _ := tr.MoveResilient(e, src, dst, bytes, core.DefaultRecoveryConfig())
	addSimTime(rep.Makespan)
	return r1ModeResult(rep.Delivered, bytes, rep.Makespan, rep.Replans), nil
}

// R1 runs the resilience sweep: throughput and completion rate vs number
// of failed links for direct / proxy-no-recovery / proxy-with-recovery,
// all three against the same seeded campaign at every point.
func R1(opt Options) (R1Result, error) {
	p := opt.params()
	shape := torus.Shape{2, 2, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return R1Result{}, err
	}
	cfg := core.DefaultProxyConfig()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	const bytes = 64 << 20

	fails := r1FailCounts(opt.Quick)
	res := R1Result{Shape: shape, Bytes: bytes, Seed: r1Seed, Fails: fails}
	res.Points = make([]R1Point, len(fails))
	err = forEachPoint(opt, len(fails), func(i int) error {
		n := fails[i]
		pt := R1Point{FailedLinks: n}
		var err error
		track := func(strategy string) string { return fmt.Sprintf("r1/fail%d/%s", n, strategy) }
		// Each strategy gets its own fresh network and an identical
		// campaign (campaigns are pure values; Apply re-schedules them).
		if pt.Direct, err = r1Direct(tor, p, r1Campaign(tor, src, dst, cfg, n), src, dst, bytes, opt.Obs, track("direct"), opt.EngineHook); err != nil {
			return err
		}
		if pt.ProxyNoRec, err = r1ProxyNoRecovery(tor, p, cfg, r1Campaign(tor, src, dst, cfg, n), src, dst, bytes, opt.Obs, track("norec"), opt.EngineHook); err != nil {
			return err
		}
		if pt.ProxyRec, err = r1ProxyRecovery(tor, p, cfg, r1Campaign(tor, src, dst, cfg, n), src, dst, bytes, opt.Obs, track("recovery"), opt.EngineHook); err != nil {
			return err
		}
		res.Points[i] = pt
		return nil
	})
	return res, err
}
