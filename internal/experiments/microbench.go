package experiments

import (
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

// Fig5Result reproduces "Point to point PUT throughputs with and w/o
// proxies in 2x2x4x4x2": throughput between the first and last node of a
// 128-node partition, direct versus 4 proxies.
type Fig5Result struct {
	Shape     torus.Shape
	Direct    Curve
	Proxied   Curve
	Crossover int64 // smallest size where the proxied transfer wins
}

// Fig5 runs the first microbenchmark.
func Fig5(opt Options) (Fig5Result, error) {
	p := opt.params()
	shape := torus.Shape{2, 2, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return Fig5Result{}, err
	}
	src := torus.NodeID(0)
	dst := torus.NodeID(tor.Size() - 1)

	res := Fig5Result{
		Shape:   shape,
		Direct:  Curve{Name: "direct"},
		Proxied: Curve{Name: "4 proxies (+B,+C,+D,+E)"},
	}
	directCfg := core.DefaultProxyConfig()
	directCfg.Threshold = 1 << 62 // always direct
	proxyCfg := core.DefaultProxyConfig()
	proxyCfg.Threshold = 0 // always proxied (the paper plots both curves)
	proxyCfg.MaxProxies = 4
	proxyCfg.MinProxies = 1

	sizes := messageSizes(opt.Quick)
	type point struct{ d, pr float64 }
	pts := make([]point, len(sizes))
	err = forEachPoint(opt, len(sizes), func(i int) error {
		size := sizes[i]
		d, _, err := runPair(tor, p, directCfg, src, dst, size, opt.EngineHook)
		if err != nil {
			return err
		}
		pr, mode, err := runPair(tor, p, proxyCfg, src, dst, size, opt.EngineHook)
		if err != nil {
			return err
		}
		if mode != core.Proxied {
			return fmt.Errorf("fig5: proxied run fell back to %v at %d bytes", mode, size)
		}
		pts[i] = point{d, pr}
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, size := range sizes {
		res.Direct.Points = append(res.Direct.Points, CurvePoint{size, pts[i].d / 1e9})
		res.Proxied.Points = append(res.Proxied.Points, CurvePoint{size, pts[i].pr / 1e9})
		if res.Crossover == 0 && pts[i].pr > pts[i].d {
			res.Crossover = size
		}
	}
	return res, nil
}

// Fig6Result reproduces "Point to point PUT throughputs w & w/o proxies
// between 2 groups of 256 nodes each in 2K nodes 4x4x4x16x2": per-pair
// average throughput, direct versus 3 proxy groups.
type Fig6Result struct {
	Shape     torus.Shape
	Groups    []core.GroupDirection
	Direct    Curve
	Proxied   Curve
	Crossover int64
}

// fig6Boxes returns the two 256-node groups: slabs at opposite ends whose
// pairwise routes run on per-pair-private rings (consistent with the
// paper's measured clean ~1.6 GB/s direct throughput).
func fig6Boxes(tor *torus.Torus) (torus.Box, torus.Box) {
	s := torus.MustNewBox(tor, torus.Coord{0, 0, 0, 0, 0}, torus.Shape{1, 4, 4, 16, 1})
	d := torus.MustNewBox(tor, torus.Coord{2, 0, 0, 0, 1}, torus.Shape{1, 4, 4, 16, 1})
	return s, d
}

// Fig6 runs the group-to-group microbenchmark.
func Fig6(opt Options) (Fig6Result, error) {
	p := opt.params()
	shape := torus.Shape{4, 4, 4, 16, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return Fig6Result{}, err
	}
	sBox, tBox := fig6Boxes(tor)
	res := Fig6Result{
		Shape:   shape,
		Groups:  core.SelectGroupDirections(tor, sBox, tBox, 0),
		Direct:  Curve{Name: "direct"},
		Proxied: Curve{Name: "3 proxy groups"},
	}
	sizes := messageSizes(opt.Quick)
	type point struct{ d, pr float64 }
	pts := make([]point, len(sizes))
	err = forEachPoint(opt, len(sizes), func(i int) error {
		size := sizes[i]
		d, err := runGroup(tor, p, sBox, tBox, size, -1, opt.EngineHook)
		if err != nil {
			return err
		}
		pr, err := runGroup(tor, p, sBox, tBox, size, 0, opt.EngineHook)
		if err != nil {
			return err
		}
		pts[i] = point{d, pr}
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, size := range sizes {
		res.Direct.Points = append(res.Direct.Points, CurvePoint{size, pts[i].d / 1e9})
		res.Proxied.Points = append(res.Proxied.Points, CurvePoint{size, pts[i].pr / 1e9})
		if res.Crossover == 0 && pts[i].pr > pts[i].d {
			res.Crossover = size
		}
	}
	return res, nil
}

// runGroup executes a group transfer and returns per-pair average
// throughput in bytes/second. groups: -1 forces direct, 0 auto-selects,
// >0 forces that many proxy groups.
func runGroup(tor *torus.Torus, p netsim.Params, sBox, tBox torus.Box, bytesPerPair int64, groups int, hook func(*netsim.Engine)) (float64, error) {
	e, err := newEngine(tor, p, hook)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultProxyConfig()
	if groups < 0 {
		cfg.Threshold = 1 << 62 // always direct
	} else {
		cfg.Threshold = 0
		cfg.MinProxies = 1
	}
	gp, err := core.NewGroupPlanner(tor, cfg)
	if err != nil {
		return 0, err
	}
	if groups > 0 {
		gp.ForceGroups = groups
	}
	if _, err := gp.Plan(e, sBox, tBox, bytesPerPair); err != nil {
		return 0, err
	}
	mk, err := e.Run()
	if err != nil {
		return 0, err
	}
	addSimTime(mk)
	return netsim.Throughput(bytesPerPair, mk), nil
}

// Fig7Result reproduces "Performance variance with number of proxies":
// 2 groups of 32 nodes in a 512-node 4x4x4x4x2 partition, sweeping the
// number of proxy groups.
type Fig7Result struct {
	Shape  torus.Shape
	Curves []Curve // "no proxies", "2 groups", ..., "5 groups"
}

func fig7Boxes(tor *torus.Torus) (torus.Box, torus.Box) {
	s := torus.MustNewBox(tor, torus.Coord{0, 0, 0, 0, 0}, torus.Shape{1, 1, 4, 4, 2})
	d := torus.MustNewBox(tor, torus.Coord{3, 3, 0, 0, 0}, torus.Shape{1, 1, 4, 4, 2})
	return s, d
}

// Fig7 runs the proxy-count sweep.
func Fig7(opt Options) (Fig7Result, error) {
	p := opt.params()
	shape := torus.Shape{4, 4, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return Fig7Result{}, err
	}
	sBox, tBox := fig7Boxes(tor)
	res := Fig7Result{Shape: shape}
	sweeps := []struct {
		name   string
		groups int
	}{
		{"no proxies", -1},
		{"2 groups of proxies", 2},
		{"3 groups of proxies", 3},
		{"4 groups as proxies", 4},
		{"5 groups of proxies", 5},
	}
	sizes := messageSizes(opt.Quick)
	vals := make([]float64, len(sweeps)*len(sizes))
	err = forEachPoint(opt, len(vals), func(i int) error {
		sw := sweeps[i/len(sizes)]
		th, err := runGroup(tor, p, sBox, tBox, sizes[i%len(sizes)], sw.groups, opt.EngineHook)
		if err != nil {
			return err
		}
		vals[i] = th
		return nil
	})
	if err != nil {
		return res, err
	}
	for si, sw := range sweeps {
		c := Curve{Name: sw.name}
		for zi, size := range sizes {
			c.Points = append(c.Points, CurvePoint{size, vals[si*len(sizes)+zi] / 1e9})
		}
		res.Curves = append(res.Curves, c)
	}
	return res, nil
}
