package experiments

import (
	"testing"

	"bgqflow/internal/routing"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	return o
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Direct.Points) != len(res.Proxied.Points) || len(res.Direct.Points) == 0 {
		t.Fatal("curve lengths mismatch")
	}
	last := len(res.Direct.Points) - 1
	// Large-message plateau: direct ~1.6 GB/s, proxied ~2x.
	d := res.Direct.Points[last].GBps
	p := res.Proxied.Points[last].GBps
	if d < 1.4 || d > 1.8 {
		t.Fatalf("direct plateau %.2f GB/s, want ~1.6", d)
	}
	if p/d < 1.6 || p/d > 2.4 {
		t.Fatalf("proxied gain %.2fx, want ~2x", p/d)
	}
	// Small messages favor direct.
	if res.Proxied.Points[0].GBps >= res.Direct.Points[0].GBps {
		t.Fatal("small message should favor direct")
	}
	if res.Crossover == 0 {
		t.Fatal("no crossover found")
	}
}

func TestFig5CrossoverNearPaper(t *testing.T) {
	res, err := Fig5(DefaultOptions()) // full sweep for crossover accuracy
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 256 KB. Accept within one doubling.
	if res.Crossover < 128<<10 || res.Crossover > 512<<10 {
		t.Fatalf("crossover at %d bytes, paper reports 256KB", res.Crossover)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("selected %d proxy groups, paper used 3", len(res.Groups))
	}
	last := len(res.Direct.Points) - 1
	gain := res.Proxied.Points[last].GBps / res.Direct.Points[last].GBps
	if gain < 1.3 || gain > 1.7 {
		t.Fatalf("group gain %.2fx, paper reports ~1.5x", gain)
	}
	// Proxied plateau near the paper's 2.4 GB/s.
	if p := res.Proxied.Points[last].GBps; p < 2.0 || p > 2.8 {
		t.Fatalf("proxied plateau %.2f GB/s, paper reports 2.4", p)
	}
}

func TestFig7Ordering(t *testing.T) {
	res, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 5 {
		t.Fatalf("%d curves", len(res.Curves))
	}
	last := len(res.Curves[0].Points) - 1
	at := func(i int) float64 { return res.Curves[i].Points[last].GBps }
	direct, g2, g3, g4, g5 := at(0), at(1), at(2), at(3), at(4)
	if g2 > 1.2*direct {
		t.Fatalf("2 groups should be ~no improvement: direct %.2f, g2 %.2f", direct, g2)
	}
	if g3 <= g2 || g4 <= g3 {
		t.Fatalf("ordering broken: g2 %.2f g3 %.2f g4 %.2f", g2, g3, g4)
	}
	if g5 >= g4 {
		t.Fatalf("5 groups should degrade: g4 %.2f g5 %.2f", g4, g5)
	}
}

func TestFig8Fig9Histograms(t *testing.T) {
	h8 := Fig8(1)
	if h8.TotalCount() != 1024 {
		t.Fatalf("fig8 holds %d samples", h8.TotalCount())
	}
	// Uniform: no bucket more than 2.5x another's expected share.
	for i, c := range h8.Counts {
		if c > 1024/len(h8.Counts)*5/2 {
			t.Fatalf("fig8 bucket %d = %d, not flat", i, c)
		}
	}
	h9 := Fig9(1)
	if h9.TotalCount() != 1024 {
		t.Fatalf("fig9 holds %d samples", h9.TotalCount())
	}
	if h9.Counts[0] <= h9.Counts[len(h9.Counts)/2] {
		t.Fatal("fig9 head not heavy")
	}
}

func TestFig10QuickGains(t *testing.T) {
	res, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.OursP1.Points {
		cores := res.OursP1.Points[i].Cores
		g1 := res.OursP1.Points[i].GBps / res.DefaultP1.Points[i].GBps
		g2 := res.OursP2.Points[i].GBps / res.DefaultP2.Points[i].GBps
		if g1 < 1.3 {
			t.Errorf("pattern 1 gain at %d cores = %.2fx, want >= 1.3 (paper: 2-3x)", cores, g1)
		}
		if g2 < 1.2 {
			t.Errorf("pattern 2 gain at %d cores = %.2fx, want >= 1.2 (paper: 1.5-2x)", cores, g2)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	res, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ours.Points {
		gain := res.Ours.Points[i].GBps / res.Default.Points[i].GBps
		if gain < 1.1 {
			t.Errorf("HACC gain at %d cores = %.2fx, want >= 1.1 (paper: up to 1.5x)",
				res.Ours.Points[i].Cores, gain)
		}
	}
}

func TestAblationThresholdK2NeverWins(t *testing.T) {
	res, err := AblationThreshold(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Curves[0].Points { // k=2
		if pt.GBps > 1.1 {
			t.Fatalf("k=2 gain %.2f at %d bytes; Eq. 5 says k=2 cannot win", pt.GBps, pt.Bytes)
		}
	}
	// k=4 beats k=3 at the largest size.
	last := len(res.Curves[0].Points) - 1
	if res.Curves[2].Points[last].GBps <= res.Curves[1].Points[last].GBps {
		t.Fatal("k=4 should beat k=3 for large messages")
	}
}

func TestAblationPlacement(t *testing.T) {
	res, err := AblationPlacement(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.DisjointGBps <= res.NaiveGBps {
		t.Fatalf("disjoint placement %.2f should beat naive %.2f", res.DisjointGBps, res.NaiveGBps)
	}
	if res.DisjointGBps <= res.DirectGBps {
		t.Fatal("disjoint placement should beat direct at 64MB")
	}
}

func TestAblationAggCount(t *testing.T) {
	res, err := AblationAggCount(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Fixed {
		if f.PerPset == 1 && res.DynamicGBps <= f.GBps {
			t.Fatalf("dynamic %.2f should beat 1 aggregator per pset %.2f", res.DynamicGBps, f.GBps)
		}
	}
}

func TestAblationZones(t *testing.T) {
	res, err := AblationZones(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var dyn, det float64
	for _, z := range res.PerZone {
		switch z.Zone {
		case routing.ZoneUnrestricted:
			dyn = z.GBps
		case routing.ZoneDeterministic:
			det = z.GBps
		}
	}
	if dyn <= det {
		t.Fatalf("dynamic zone (%.2f) should beat deterministic (%.2f) for concurrent same-pair messages", dyn, det)
	}
}

func TestShapeForCores(t *testing.T) {
	for _, ws := range WeakScalingShapes {
		s, err := ShapeForCores(ws.Cores)
		if err != nil {
			t.Fatal(err)
		}
		if s.Size()*16 != ws.Cores {
			t.Fatalf("shape %v gives %d cores, want %d", s, s.Size()*16, ws.Cores)
		}
	}
	if _, err := ShapeForCores(12345); err == nil {
		t.Fatal("unknown core count accepted")
	}
}

func TestAblationRoundSync(t *testing.T) {
	res, err := AblationRoundSync(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.UnsyncedGBps <= res.SyncedGBps {
		t.Fatalf("removing round sync should help: synced %.2f, unsynced %.2f",
			res.SyncedGBps, res.UnsyncedGBps)
	}
	if res.OursGBps <= res.UnsyncedGBps {
		t.Fatalf("ours (%.2f) should still beat unsynced collective I/O (%.2f) via placement",
			res.OursGBps, res.UnsyncedGBps)
	}
}
