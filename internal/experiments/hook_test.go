package experiments

import (
	"sync/atomic"
	"testing"

	"bgqflow/internal/netsim"
)

// Every runner family must route engine construction through
// Options.EngineHook — it is the only seam the -check auditors have.
func TestEngineHookFiresAcrossRunners(t *testing.T) {
	runs := []struct {
		name string
		run  func(opt Options) error
	}{
		{"fig5", func(opt Options) error { _, err := Fig5(opt); return err }},
		{"fig10", func(opt Options) error { _, err := Fig10(opt); return err }},
		{"r1", func(opt Options) error { _, err := R1(opt); return err }},
		{"ablations/zones", func(opt Options) error { _, err := AblationZones(opt); return err }},
		{"extensions/validation", func(opt Options) error { _, err := ExtValidation(opt); return err }},
	}
	for _, r := range runs {
		var engines atomic.Int64
		opt := DefaultOptions()
		opt.Quick = true
		opt.EngineHook = func(e *netsim.Engine) {
			if e == nil {
				t.Error("hook received nil engine")
			}
			engines.Add(1)
		}
		if err := r.run(opt); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if engines.Load() == 0 {
			t.Errorf("%s: EngineHook never fired", r.name)
		}
	}
}
