// Package experiments contains one runner per figure of the paper's
// evaluation (Figs. 5-11) plus the ablations listed in DESIGN.md. Each
// runner builds the paper's geometry, executes the workload on the
// flow-level simulator, and returns the same rows/series the paper
// plots. The bench harness (bench_test.go) and the bgqbench command both
// call these runners, so the numbers in EXPERIMENTS.md are reproducible
// from either entry point.
package experiments

import (
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/torus"
)

// Options configures a run.
type Options struct {
	// Params are the machine constants; zero value means defaults.
	Params netsim.Params
	// Quick trims sweeps (fewer sizes, smaller top scale) so the
	// testing.B benchmarks finish fast; the bgqbench command runs full
	// sweeps.
	Quick bool
	// Parallel is the number of worker goroutines used to evaluate
	// independent sweep points. 0 (the default) means one per CPU; 1
	// forces sequential execution. Results are identical at any setting:
	// every point is self-contained and deterministic, and the runner
	// assembles results in index order.
	Parallel int
	// Obs, when non-nil, collects spans, instants, and metrics from the
	// runners that support it (currently R1): per-strategy engine sinks
	// produce flow spans and failure instants on tracks like
	// "r1/fail8/recovery", the recovery Transport adds wave/replan spans,
	// and route-cache counters land in the recorder's registry. The
	// Recorder is safe to share across parallel sweep points. nil = off.
	Obs *obs.Recorder
	// EngineHook, when non-nil, runs on every netsim.Engine a runner
	// constructs — after construction, before any flow is submitted. The
	// bgqbench -check mode uses it to attach invariant auditors
	// (internal/check). Runners evaluate sweep points on parallel
	// workers, so the hook must be safe for concurrent use. An auditor
	// claims the engine's observability sink, so hooks that do the same
	// must not be combined with Obs (the r1 runner installs a sink per
	// engine when Obs is set).
	EngineHook func(*netsim.Engine)
}

// DefaultOptions returns a full-fidelity configuration.
func DefaultOptions() Options {
	return Options{Params: netsim.DefaultParams()}
}

func (o Options) params() netsim.Params {
	if o.Params == (netsim.Params{}) {
		return netsim.DefaultParams()
	}
	return o.Params
}

// CurvePoint is one x/y sample of a throughput curve.
type CurvePoint struct {
	Bytes int64
	GBps  float64
}

// Curve is a named series of points.
type Curve struct {
	Name   string
	Points []CurvePoint
}

// messageSizes returns the paper's microbenchmark sweep: 1 KB to 128 MB,
// doubling.
func messageSizes(quick bool) []int64 {
	if quick {
		return []int64{16 << 10, 256 << 10, 4 << 20, 64 << 20}
	}
	var out []int64
	for s := int64(1 << 10); s <= 128<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// newEngine builds a fresh engine over a fresh network for one run and
// applies the hook (usually Options.EngineHook; nil = none).
func newEngine(tor *torus.Torus, p netsim.Params, hook func(*netsim.Engine)) (*netsim.Engine, error) {
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err == nil && hook != nil {
		hook(e)
	}
	return e, err
}

// newIORig builds the network + I/O system + job for an I/O experiment.
type ioRig struct {
	tor  *torus.Torus
	net  *netsim.Network
	ios  *ionet.System
	job  *mpisim.Job
	p    netsim.Params
	hook func(*netsim.Engine)
}

func newIORig(shape torus.Shape, ranksPerNode int, p netsim.Params, hook func(*netsim.Engine)) (*ioRig, error) {
	tor, err := torus.New(shape)
	if err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		return nil, err
	}
	job, err := mpisim.NewJob(tor, ranksPerNode)
	if err != nil {
		return nil, err
	}
	return &ioRig{tor: tor, net: net, ios: ios, job: job, p: p, hook: hook}, nil
}

func (r *ioRig) engine() (*netsim.Engine, error) {
	e, err := netsim.NewEngine(r.net, r.p)
	if err == nil && r.hook != nil {
		r.hook(e)
	}
	return e, err
}

// WeakScalingShapes maps core counts to BG/Q partition geometries
// (16 application cores per node), covering the paper's 2,048 to 131,072
// core sweep plus a 262,144-core point (a 16K-node half-rack row beyond
// the paper's largest run) that the incremental waterfill (DESIGN.md
// §13) makes affordable in the default full sweep.
var WeakScalingShapes = []struct {
	Cores int
	Shape torus.Shape
}{
	{2048, torus.Shape{2, 2, 4, 4, 2}},
	{4096, torus.Shape{2, 4, 4, 4, 2}},
	{8192, torus.Shape{4, 4, 4, 4, 2}},
	{16384, torus.Shape{4, 4, 4, 8, 2}},
	{32768, torus.Shape{4, 4, 4, 16, 2}},
	{65536, torus.Shape{4, 4, 8, 16, 2}},
	{131072, torus.Shape{4, 8, 8, 16, 2}},
	{262144, torus.Shape{8, 8, 8, 16, 2}},
}

// ShapeForCores returns the partition geometry for a core count.
func ShapeForCores(cores int) (torus.Shape, error) {
	for _, ws := range WeakScalingShapes {
		if ws.Cores == cores {
			return ws.Shape, nil
		}
	}
	return nil, fmt.Errorf("experiments: no geometry for %d cores", cores)
}

// runPair executes a point-to-point transfer and returns throughput in
// bytes/second. forceThreshold overrides the planner threshold (0 forces
// proxies for any size; a huge value forces direct).
func runPair(tor *torus.Torus, p netsim.Params, cfg core.ProxyConfig, src, dst torus.NodeID, bytes int64, hook func(*netsim.Engine)) (float64, core.TransferMode, error) {
	e, err := newEngine(tor, p, hook)
	if err != nil {
		return 0, 0, err
	}
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		return 0, 0, err
	}
	plan, err := pl.PlanPair(e, src, dst, bytes)
	if err != nil {
		return 0, 0, err
	}
	mk, err := e.Run()
	if err != nil {
		return 0, 0, err
	}
	addSimTime(mk)
	return netsim.Throughput(bytes, mk), plan.Mode, nil
}
