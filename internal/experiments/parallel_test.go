package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// withParallel returns quick options pinned to a worker count.
func withParallel(n int) Options {
	o := quickOpts()
	o.Parallel = n
	return o
}

// TestParallelMatchesSequential asserts the runner's core guarantee: a
// parallel run produces byte-identical result rows to a sequential run.
// Every sweep point is self-contained and deterministic, and results are
// assembled in index order, so worker count must not leak into output.
func TestParallelMatchesSequential(t *testing.T) {
	t.Run("fig5", func(t *testing.T) {
		seq, err := Fig5(withParallel(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Fig5(withParallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("fig5 diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
		}
	})
	t.Run("fig7", func(t *testing.T) {
		seq, err := Fig7(withParallel(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Fig7(withParallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("fig7 diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
		}
	})
	t.Run("r1", func(t *testing.T) {
		// The resilience sweep layers seeded fault campaigns and the
		// interactive recovery loop on top of the usual per-point
		// determinism; it must still be byte-identical at any worker
		// count, including one per CPU.
		seq, err := R1(withParallel(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := R1(withParallel(runtime.NumCPU()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("r1 diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
		}
	})
	t.Run("ablation-threshold", func(t *testing.T) {
		seq, err := AblationThreshold(withParallel(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := AblationThreshold(withParallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("ablation threshold diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
		}
	})
}

// TestParallelMatchesSequentialIO covers a rig-per-point runner too:
// Fig10 builds an I/O system per sweep point, so this additionally
// checks that rig construction is deterministic under concurrency.
func TestParallelMatchesSequentialIO(t *testing.T) {
	if testing.Short() {
		t.Skip("io sweep")
	}
	seq, err := Fig10(withParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(withParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fig10 diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}
