package experiments

import "testing"

func TestExtStorage(t *testing.T) {
	res, err := ExtStorage(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	devnull, ample, scarce := res.Rows[0], res.Rows[1], res.Rows[2]
	// Ours always beats the default within a sink configuration where
	// the network is the constraint.
	if devnull.OursGBps <= devnull.DefaultGBps {
		t.Fatal("devnull: ours should win")
	}
	// A scarce server tier caps everything and compresses the gap.
	if scarce.OursGBps >= ample.OursGBps {
		t.Fatalf("scarce servers (%.1f) should be slower than ample (%.1f)",
			scarce.OursGBps, ample.OursGBps)
	}
	gapDevnull := devnull.OursGBps / devnull.DefaultGBps
	gapScarce := scarce.OursGBps / scarce.DefaultGBps
	if gapScarce >= gapDevnull {
		t.Fatalf("the aggregation win should shrink when servers bind: devnull %.2fx, scarce %.2fx",
			gapDevnull, gapScarce)
	}
}

func TestExtMapping(t *testing.T) {
	res, err := ExtMapping(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OursGBps <= 0 || row.DefGBps <= 0 {
			t.Fatalf("empty throughput in %+v", row)
		}
		// Topology-aware aggregation must win under both mappings — its
		// balance does not depend on where the data sits.
		if row.OursGBps <= row.DefGBps {
			t.Fatalf("mapping %s: ours %.2f did not beat default %.2f",
				row.Mapping, row.OursGBps, row.DefGBps)
		}
	}
}

func TestExtPipeline(t *testing.T) {
	res, err := ExtPipeline(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Direct.Points) - 1
	d := res.Direct.Points[last].GBps
	plain2 := res.PlainK2.Points[last].GBps
	piped2 := res.PipedK2.Points[last].GBps
	piped4 := res.PipedK4.Points[last].GBps
	// The paper's future-work claim: pipelining makes k=2 profitable.
	if plain2 > d*1.05 {
		t.Fatalf("plain k=2 (%.2f) should not beat direct (%.2f)", plain2, d)
	}
	if piped2 <= d {
		t.Fatalf("pipelined k=2 (%.2f) should beat direct (%.2f)", piped2, d)
	}
	if piped4 <= piped2 {
		t.Fatalf("pipelined k=4 (%.2f) should beat pipelined k=2 (%.2f)", piped4, piped2)
	}
}

func TestExtValidation(t *testing.T) {
	res, err := ExtValidation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.DiffPct > 10 {
			t.Fatalf("%s at %d bytes: flow %.2f vs packet %.2f GB/s (%.1f%% apart)",
				row.Scenario, row.Bytes, row.FlowGBps, row.PacketGBps, row.DiffPct)
		}
	}
}

func TestExtInsitu(t *testing.T) {
	res, err := ExtInsitu(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.RanksWithData <= 0 || row.RanksWithData > 0.7 {
			t.Fatalf("in-situ burst not sparse: %.2f of ranks hold data", row.RanksWithData)
		}
		if row.OursGBps <= row.DefaultGBps {
			t.Fatalf("at %d cores ours %.2f did not beat default %.2f",
				row.Cores, row.OursGBps, row.DefaultGBps)
		}
	}
}
