package experiments

import "testing"

// TestTopoCompareShape: the cross-topology sweep covers every fabric at
// every size, the curves plateau near the per-flow cap (a single direct
// flow is endpoint-bound on all three fabrics), and fewer hops means a
// no-slower small-message point.
func TestTopoCompareShape(t *testing.T) {
	res, err := TopoCompare(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fabrics) != len(topoCompareSpecs) {
		t.Fatalf("%d fabrics, want %d", len(res.Fabrics), len(topoCompareSpecs))
	}
	for _, f := range res.Fabrics {
		if f.Nodes != 128 {
			t.Errorf("%s: %d nodes, want 128 (comparable machines)", f.Spec, f.Nodes)
		}
		if f.Hops < 1 {
			t.Errorf("%s: degenerate %d-hop measured route", f.Spec, f.Hops)
		}
		if len(f.Curve.Points) == 0 {
			t.Fatalf("%s: empty curve", f.Spec)
		}
		last := f.Curve.Points[len(f.Curve.Points)-1]
		if last.GBps < 1.5 || last.GBps > 1.8 {
			t.Errorf("%s: large-message plateau %.3f GB/s, want ~1.65 (per-flow cap)", f.Spec, last.GBps)
		}
		for _, pt := range f.Curve.Points {
			if pt.GBps <= 0 {
				t.Errorf("%s at %d bytes: non-positive throughput", f.Spec, pt.Bytes)
			}
		}
	}
	// The torus pair crosses 5 hops, the fat-tree 2: at the smallest
	// size, where hop latency matters most, the shallower fabric must
	// not be slower.
	small := func(i int) float64 { return res.Fabrics[i].Curve.Points[0].GBps }
	if small(2) < small(0) {
		t.Errorf("fat-tree small-message %.4f GB/s slower than torus %.4f", small(2), small(0))
	}
}

// TestTopoCompareDeterministic: same options, same curves, at any
// parallelism (each point is self-contained).
func TestTopoCompareDeterministic(t *testing.T) {
	seq := quickOpts()
	seq.Parallel = 1
	par := quickOpts()
	par.Parallel = 4
	a, err := TopoCompare(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopoCompare(par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Fabrics {
		for j := range a.Fabrics[i].Curve.Points {
			if a.Fabrics[i].Curve.Points[j] != b.Fabrics[i].Curve.Points[j] {
				t.Fatalf("%s point %d differs across parallelism", a.Fabrics[i].Spec, j)
			}
		}
	}
}
