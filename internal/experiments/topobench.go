package experiments

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// topoCompareSpecs are the fabrics the cross-topology benchmark sweeps:
// the paper's 128-node midplane slice plus dragonfly and fat-tree
// fabrics of comparable endpoint count, so the curves answer "what does
// the same transfer cost on a different machine" rather than comparing
// machines of different sizes.
var topoCompareSpecs = []string{
	"torus:2x2x4x4x2",  // 128 nodes, the BG/Q baseline
	"dragonfly:16x8x2", // 128 nodes, 2-rail global links
	"fattree:128x16x2", // 128 leaves, 16 spines, 2 rails
}

// TopoFabric is one fabric's direct-transfer curve.
type TopoFabric struct {
	Spec  string
	Nodes int
	Hops  int // route length of the measured pair
	Curve Curve
}

// TopoCompareResult is the cross-topology direct-transfer comparison.
type TopoCompareResult struct {
	Fabrics []TopoFabric
}

// TopoCompare sweeps a corner-to-corner direct pair transfer over the
// paper's message sizes on each fabric in topoCompareSpecs. Every point
// builds its own network and engine (the fabric parsed fresh), so the
// sweep parallelizes like the figure runners and honors EngineHook for
// -check audits.
func TopoCompare(opt Options) (TopoCompareResult, error) {
	p := opt.params()
	sizes := messageSizes(opt.Quick)
	res := TopoCompareResult{Fabrics: make([]TopoFabric, len(topoCompareSpecs))}
	for fi, spec := range topoCompareSpecs {
		tp, err := topo.Parse(spec)
		if err != nil {
			return res, err
		}
		src, dst := torus.NodeID(0), torus.NodeID(tp.NumNodes()-1)
		res.Fabrics[fi] = TopoFabric{
			Spec:  spec,
			Nodes: tp.NumNodes(),
			Hops:  len(tp.Route(src, dst)),
			Curve: Curve{Name: spec, Points: make([]CurvePoint, len(sizes))},
		}
	}
	type key struct{ fi, si int }
	points := make([]key, 0, len(topoCompareSpecs)*len(sizes))
	for fi := range topoCompareSpecs {
		for si := range sizes {
			points = append(points, key{fi, si})
		}
	}
	err := forEachPoint(opt, len(points), func(i int) error {
		fi, si := points[i].fi, points[i].si
		tp, err := topo.Parse(topoCompareSpecs[fi])
		if err != nil {
			return err
		}
		net := netsim.NewNetworkTopo(tp, p.LinkBandwidth)
		e, err := netsim.NewEngine(net, p)
		if err != nil {
			return err
		}
		if opt.EngineHook != nil {
			opt.EngineHook(e)
		}
		src, dst := torus.NodeID(0), torus.NodeID(tp.NumNodes()-1)
		e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: sizes[si], Label: "direct"})
		mk, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s at %d bytes: %w", topoCompareSpecs[fi], sizes[si], err)
		}
		res.Fabrics[fi].Curve.Points[si] = CurvePoint{
			Bytes: sizes[si],
			GBps:  netsim.Throughput(sizes[si], sim.Duration(mk)) / 1e9,
		}
		return nil
	})
	return res, err
}
