package experiments

import (
	"fmt"
	"strings"
	"testing"

	"bgqflow/internal/obs"
)

// r1Trace runs the quick R1 sweep with a recorder attached and the given
// worker count, returning a canonical rendering of everything recorded.
func r1Trace(t *testing.T, parallel int) (spans, instants []string, snap obs.MetricsSnapshot) {
	t.Helper()
	opt := DefaultOptions()
	opt.Quick = true
	opt.Parallel = parallel
	opt.Obs = obs.NewRecorder()
	if _, err := R1(opt); err != nil {
		t.Fatal(err)
	}
	for _, s := range opt.Obs.Spans() {
		spans = append(spans, fmt.Sprintf("%s|%s|%.9f|%.9f|%v", s.Track, s.Name, float64(s.Begin), float64(s.End), s.Aborted))
	}
	for _, i := range opt.Obs.Instants() {
		instants = append(instants, fmt.Sprintf("%s|%s|%.9f", i.Track, i.Name, float64(i.At)))
	}
	return spans, instants, opt.Obs.Registry().Snapshot()
}

// TestR1ObserversDeterministicUnderParallelRunner pins the observability
// contract of the parallel experiment runner (run under -race in tier-1):
// every sweep point gets its own engine, sink tracks are per point and
// strategy, and the recorder sorts on simulation time — so the full
// recorded trace and the metrics snapshot are identical whether the sweep
// ran sequentially or on four workers, and events within each track fire
// in nondecreasing simulation-time order.
func TestR1ObserversDeterministicUnderParallelRunner(t *testing.T) {
	seqSpans, seqInstants, seqSnap := r1Trace(t, 1)
	parSpans, parInstants, parSnap := r1Trace(t, 4)

	if len(seqSpans) == 0 || len(seqInstants) == 0 {
		t.Fatalf("sequential run recorded %d spans, %d instants — expected both non-empty",
			len(seqSpans), len(seqInstants))
	}
	if len(parSpans) != len(seqSpans) {
		t.Fatalf("parallel run recorded %d spans, sequential %d", len(parSpans), len(seqSpans))
	}
	for i := range seqSpans {
		if parSpans[i] != seqSpans[i] {
			t.Fatalf("span %d differs:\n  seq: %s\n  par: %s", i, seqSpans[i], parSpans[i])
		}
	}
	if len(parInstants) != len(seqInstants) {
		t.Fatalf("parallel run recorded %d instants, sequential %d", len(parInstants), len(seqInstants))
	}
	for i := range seqInstants {
		if parInstants[i] != seqInstants[i] {
			t.Fatalf("instant %d differs:\n  seq: %s\n  par: %s", i, seqInstants[i], parInstants[i])
		}
	}
	for name, v := range seqSnap.Counters {
		if parSnap.Counters[name] != v {
			t.Fatalf("counter %q = %d parallel vs %d sequential", name, parSnap.Counters[name], v)
		}
	}

	// Per-track simulation-time order: sweep and failure observers (and
	// everything else filed on a track) must replay in nondecreasing time.
	lastBegin := make(map[string]float64)
	for _, s := range seqSpans {
		parts := strings.Split(s, "|")
		track := parts[0]
		var begin float64
		fmt.Sscanf(parts[2], "%f", &begin)
		if begin < lastBegin[track] {
			t.Fatalf("track %q goes back in time: %s", track, s)
		}
		lastBegin[track] = begin
	}

	// The quick sweep's structure shows through: per-point, per-strategy
	// tracks, with replans and failure instants on the failing points.
	var sawRecoveryFlows, sawReplan, sawFailureInstant bool
	for _, s := range seqSpans {
		if strings.HasPrefix(s, "r1/fail8/recovery/flows|") {
			sawRecoveryFlows = true
		}
		if strings.Contains(s, "|replan ") {
			sawReplan = true
		}
	}
	for _, i := range seqInstants {
		if strings.Contains(i, "/failures|") {
			sawFailureInstant = true
		}
	}
	if !sawRecoveryFlows || !sawReplan || !sawFailureInstant {
		t.Fatalf("trace missing expected structure: recoveryFlows=%v replan=%v failureInstant=%v",
			sawRecoveryFlows, sawReplan, sawFailureInstant)
	}
	if seqSnap.Counters["routing/cache/invalidations"] == 0 {
		t.Fatal("route-cache invalidation counter never published")
	}
}
