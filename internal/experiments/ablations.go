package experiments

import (
	"math/rand"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// AblationThresholdResult validates the paper's Eq. 5 cost model: the
// asymptotic gain of k proxies is k/2, so k=2 never wins, and below the
// size threshold splitting loses. One curve per proxy count, values are
// gain over direct transfer.
type AblationThresholdResult struct {
	Shape  torus.Shape
	Curves []Curve // gain vs direct, per k
}

// AblationThreshold sweeps message size for k = 2, 3, 4 fixed proxies on
// the Fig. 5 geometry.
func AblationThreshold(opt Options) (AblationThresholdResult, error) {
	p := opt.params()
	shape := torus.Shape{2, 2, 4, 4, 2}
	tor, err := torus.New(shape)
	if err != nil {
		return AblationThresholdResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	res := AblationThresholdResult{Shape: shape}

	directCfg := core.DefaultProxyConfig()
	directCfg.Threshold = 1 << 62

	ks := []int{2, 3, 4}
	sizes := messageSizes(opt.Quick)
	vals := make([]float64, len(ks)*len(sizes))
	err = forEachPoint(opt, len(vals), func(i int) error {
		k := ks[i/len(sizes)]
		size := sizes[i%len(sizes)]
		cfg := core.DefaultProxyConfig()
		cfg.Threshold = 0
		cfg.MinProxies = k
		cfg.MaxProxies = k
		d, _, err := runPair(tor, p, directCfg, src, dst, size, opt.EngineHook)
		if err != nil {
			return err
		}
		pr, _, err := runPair(tor, p, cfg, src, dst, size, opt.EngineHook)
		if err != nil {
			return err
		}
		vals[i] = pr / d
		return nil
	})
	if err != nil {
		return res, err
	}
	for ki, k := range ks {
		c := Curve{Name: ksuffix(k)}
		for zi, size := range sizes {
			c.Points = append(c.Points, CurvePoint{size, vals[ki*len(sizes)+zi]})
		}
		res.Curves = append(res.Curves, c)
	}
	return res, nil
}

func ksuffix(k int) string {
	return map[int]string{2: "k=2 proxies", 3: "k=3 proxies", 4: "k=4 proxies"}[k]
}

// AblationPlacementResult compares the paper's link-disjoint placement
// against naive intermediate nodes (random placement, default routes for
// both legs) at a fixed large message size.
type AblationPlacementResult struct {
	Bytes           int64
	DirectGBps      float64
	DisjointGBps    float64
	NaiveGBps       float64
	DisjointProxies int
}

// AblationPlacement quantifies how much of the multipath gain comes from
// the placement heuristic rather than from mere path multiplicity.
func AblationPlacement(opt Options) (AblationPlacementResult, error) {
	p := opt.params()
	tor, err := torus.New(torus.Shape{2, 2, 4, 4, 2})
	if err != nil {
		return AblationPlacementResult{}, err
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	const bytes = 64 << 20
	res := AblationPlacementResult{Bytes: bytes}

	directCfg := core.DefaultProxyConfig()
	directCfg.Threshold = 1 << 62

	cfg := core.DefaultProxyConfig()
	cfg.Threshold = 0
	cfg.MaxProxies = 4
	cfg.MinProxies = 1
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		return res, err
	}
	res.DisjointProxies = len(pl.SelectProxies(src, dst))

	// Three independent measurements: direct, disjoint placement, naive
	// placement. Each point writes its own result field.
	err = forEachPoint(opt, 3, func(i int) error {
		switch i {
		case 0:
			d, _, err := runPair(tor, p, directCfg, src, dst, bytes, opt.EngineHook)
			if err != nil {
				return err
			}
			res.DirectGBps = d / 1e9
		case 1:
			dj, _, err := runPair(tor, p, cfg, src, dst, bytes, opt.EngineHook)
			if err != nil {
				return err
			}
			res.DisjointGBps = dj / 1e9
		case 2:
			// Naive: 4 random intermediate nodes, default deterministic
			// routes for both legs, no disjointness checks.
			e, err := newEngine(tor, p, opt.EngineHook)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(12345))
			pieces := int64(bytes / 4)
			for j := 0; j < 4; j++ {
				var proxy torus.NodeID
				for {
					proxy = torus.NodeID(rng.Intn(tor.Size()))
					if proxy != src && proxy != dst {
						break
					}
				}
				l1 := e.Submit(netsim.FlowSpec{Src: src, Dst: proxy, Bytes: pieces})
				e.Submit(netsim.FlowSpec{Src: proxy, Dst: dst, Bytes: pieces,
					DependsOn: []netsim.FlowID{l1}, ExtraDelay: p.ProxyForwardOverhead})
			}
			mk, err := e.Run()
			if err != nil {
				return err
			}
			addSimTime(mk)
			res.NaiveGBps = netsim.Throughput(bytes, mk) / 1e9
		}
		return nil
	})
	return res, err
}

// AblationAggCountResult compares the dynamic data-size-driven aggregator
// count against fixed per-pset counts on a Pattern 1 burst.
type AblationAggCountResult struct {
	Cores          int
	BurstGB        float64
	DynamicGBps    float64
	DynamicPerPset int
	Fixed          []struct {
		PerPset int
		GBps    float64
	}
}

// AblationAggCount validates Algorithm 2's dynamic selection.
func AblationAggCount(opt Options) (AblationAggCountResult, error) {
	p := opt.params()
	cores := 32768
	if opt.Quick {
		cores = 8192
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return AblationAggCountResult{}, err
	}
	probe, err := newIORig(shape, 16, p, opt.EngineHook)
	if err != nil {
		return AblationAggCountResult{}, err
	}
	data := workload.Uniform(probe.job.NumRanks(), eightMB, 99)
	res := AblationAggCountResult{Cores: cores, BurstGB: float64(workload.Total(data)) / 1e9}

	// One self-contained point per configuration: each builds its own rig
	// (sinks and planners register links on the network) and regenerates
	// the same seeded burst.
	run := func(cfg core.AggConfig) (float64, int, error) {
		rig, err := newIORig(shape, 16, p, opt.EngineHook)
		if err != nil {
			return 0, 0, err
		}
		e, err := rig.engine()
		if err != nil {
			return 0, 0, err
		}
		pl, err := core.NewAggPlanner(rig.ios, rig.job, rig.p, cfg)
		if err != nil {
			return 0, 0, err
		}
		plan, err := pl.Plan(e, workload.Uniform(rig.job.NumRanks(), eightMB, 99))
		if err != nil {
			return 0, 0, err
		}
		mk, err := e.Run()
		if err != nil {
			return 0, 0, err
		}
		addSimTime(mk)
		return float64(plan.TotalBytes) / (float64(mk) + float64(plan.Metadata)) / 1e9, plan.AggPerPset, nil
	}

	fixedCounts := []int{1, 4, 128}
	type point struct {
		gbps    float64
		perPset int
	}
	pts := make([]point, 1+len(fixedCounts))
	err = forEachPoint(opt, len(pts), func(i int) error {
		cfg := core.DefaultAggConfig()
		if i > 0 {
			cfg = core.AggConfig{MinBytesPerAggregator: 1, MaxAggregatorsPerPset: fixedCounts[i-1]}
		}
		gbps, perPset, err := run(cfg)
		if err != nil {
			return err
		}
		pts[i] = point{gbps, perPset}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.DynamicGBps, res.DynamicPerPset = pts[0].gbps, pts[0].perPset
	for _, pt := range pts[1:] {
		res.Fixed = append(res.Fixed, struct {
			PerPset int
			GBps    float64
		}{pt.perPset, pt.gbps})
	}
	return res, nil
}

// AblationRoundSyncResult isolates the cost of the default collective
// I/O path's per-round synchronization by turning it off.
type AblationRoundSyncResult struct {
	Cores        int
	SyncedGBps   float64
	UnsyncedGBps float64
	OursGBps     float64
}

// AblationRoundSync quantifies how much of the default path's deficit
// comes from round serialization versus aggregator placement.
func AblationRoundSync(opt Options) (AblationRoundSyncResult, error) {
	p := opt.params()
	cores := 32768
	if opt.Quick {
		cores = 8192
	}
	shape, err := ShapeForCores(cores)
	if err != nil {
		return AblationRoundSyncResult{}, err
	}
	res := AblationRoundSyncResult{Cores: cores}

	// Each point builds its own rig and regenerates the seeded burst, so
	// the three measurements are independent.
	runCollio := func(sync bool) (float64, error) {
		rig, err := newIORig(shape, 16, p, opt.EngineHook)
		if err != nil {
			return 0, err
		}
		e, err := rig.engine()
		if err != nil {
			return 0, err
		}
		cfg := collio.DefaultConfig()
		cfg.RoundSync = sync
		pl, err := collio.NewPlanner(rig.ios, rig.job, rig.p, cfg)
		if err != nil {
			return 0, err
		}
		plan, err := pl.Plan(e, workload.Uniform(rig.job.NumRanks(), eightMB, 31))
		if err != nil {
			return 0, err
		}
		mk, err := e.Run()
		if err != nil {
			return 0, err
		}
		addSimTime(mk)
		return float64(plan.TotalBytes) / (float64(mk) + float64(plan.Metadata)) / 1e9, nil
	}
	err = forEachPoint(opt, 3, func(i int) error {
		switch i {
		case 0:
			v, err := runCollio(true)
			if err != nil {
				return err
			}
			res.SyncedGBps = v
		case 1:
			v, err := runCollio(false)
			if err != nil {
				return err
			}
			res.UnsyncedGBps = v
		case 2:
			rig, err := newIORig(shape, 16, p, opt.EngineHook)
			if err != nil {
				return err
			}
			v, err := aggThroughput(rig, workload.Uniform(rig.job.NumRanks(), eightMB, 31), true)
			if err != nil {
				return err
			}
			res.OursGBps = v
		}
		return nil
	})
	return res, err
}

// AblationZonesResult measures how much path diversity each routing zone
// gives to a burst of concurrent messages between one node pair.
type AblationZonesResult struct {
	Messages int
	Bytes    int64
	PerZone  []struct {
		Zone routing.Zone
		GBps float64
	}
}

// AblationZones submits concurrent same-pair messages routed per zone.
// The deterministic zones (2, 3) pin every message to one path; the
// dynamic zones (0, 1) spread them, which is the routing freedom the
// proxy mechanism exploits explicitly.
func AblationZones(opt Options) (AblationZonesResult, error) {
	p := opt.params()
	tor, err := torus.New(torus.Shape{4, 4, 4, 4, 2})
	if err != nil {
		return AblationZonesResult{}, err
	}
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{2, 2, 2, 2, 1})
	const messages = 8
	const bytes = 16 << 20
	res := AblationZonesResult{Messages: messages, Bytes: bytes}
	res.PerZone = make([]struct {
		Zone routing.Zone
		GBps float64
	}, 4)
	err = forEachPoint(opt, 4, func(i int) error {
		z := routing.Zone(i)
		router, err := routing.NewRouter(tor, z, 7)
		if err != nil {
			return err
		}
		e, err := newEngine(tor, p, opt.EngineHook)
		if err != nil {
			return err
		}
		for m := 0; m < messages; m++ {
			r := router.Route(src, dst)
			e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes, Links: r.Links})
		}
		mk, err := e.Run()
		if err != nil {
			return err
		}
		addSimTime(mk)
		res.PerZone[i] = struct {
			Zone routing.Zone
			GBps float64
		}{z, netsim.Throughput(messages*bytes, mk) / 1e9}
		return nil
	})
	return res, err
}
