package experiments

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"bgqflow/internal/sim"
)

// workers resolves Options.Parallel: non-positive means one worker per
// available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEachPoint evaluates fn(i) for every i in [0, n) using up to
// opt.workers() goroutines. Sweep points are self-contained — each builds
// its own network and engine and seeds any randomness from the point's
// own parameters — so the runner only has to keep results in index order
// for output to be identical to a sequential run.
//
// fn must write results only into its own index's slot. Error behavior is
// deterministic too: whatever the schedule, the error returned is the one
// from the lowest-index failing point, matching what a sequential run
// would report.
func forEachPoint(opt Options, n int, fn func(i int) error) error {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// simTimeBits accumulates simulated seconds across engine runs (float64
// bits, updated by CAS so concurrent sweep points can add safely).
var simTimeBits atomic.Uint64

// addSimTime credits one engine run's makespan to the accumulator.
func addSimTime(d sim.Duration) {
	for {
		old := simTimeBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + float64(d))
		if simTimeBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ResetSimTime zeroes the simulated-time accumulator. The bench harness
// calls this before each experiment to report simulated seconds per
// experiment next to wall time.
func ResetSimTime() { simTimeBits.Store(0) }

// SimTime returns the simulated seconds accumulated since the last reset.
func SimTime() float64 { return math.Float64frombits(simTimeBits.Load()) }
