package experiments

import "testing"

// TestR1RobustnessOrdering is the ISSUE's acceptance criterion: under
// every injected campaign (all of which leave the torus connected), the
// recovery strategy delivers 100% of the bytes, while no-recovery loses
// the pieces whose legs die and direct loses everything once its single
// path is hit — the qualitative robustness ordering.
func TestR1RobustnessOrdering(t *testing.T) {
	res, err := R1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(res.Fails) {
		t.Fatalf("%d points for %d fail counts", len(res.Points), len(res.Fails))
	}
	for _, pt := range res.Points {
		if pt.ProxyRec.DeliveredFrac != 1 {
			t.Errorf("%d failures: recovery delivered %.2f, want 1.0",
				pt.FailedLinks, pt.ProxyRec.DeliveredFrac)
		}
		if pt.FailedLinks == 0 {
			// Healthy baseline: everything completes, nothing replans.
			if pt.Direct.DeliveredFrac != 1 || pt.ProxyNoRec.DeliveredFrac != 1 {
				t.Errorf("0 failures: direct %.2f / no-rec %.2f delivered, want 1.0",
					pt.Direct.DeliveredFrac, pt.ProxyNoRec.DeliveredFrac)
			}
			if pt.ProxyRec.Replans != 0 {
				t.Errorf("0 failures: %d replans", pt.ProxyRec.Replans)
			}
			continue
		}
		// The campaign always hits the direct route (pool[0]) inside the
		// injection window, so the unprotected direct transfer stalls.
		if pt.Direct.DeliveredFrac != 0 {
			t.Errorf("%d failures: direct delivered %.2f, want 0 (its only path is hit)",
				pt.FailedLinks, pt.Direct.DeliveredFrac)
		}
		// No-recovery loses at most everything, recovers nothing, and can
		// never beat the recovery loop on delivery.
		if pt.ProxyNoRec.DeliveredFrac > pt.ProxyRec.DeliveredFrac {
			t.Errorf("%d failures: no-recovery delivered %.2f > recovery %.2f",
				pt.FailedLinks, pt.ProxyNoRec.DeliveredFrac, pt.ProxyRec.DeliveredFrac)
		}
		if pt.ProxyRec.Replans == 0 && pt.ProxyNoRec.DeliveredFrac < 1 {
			t.Errorf("%d failures: pieces were lost but recovery never replanned", pt.FailedLinks)
		}
	}
	// Graceful degradation: recovery throughput may fall with failures
	// but must stay positive everywhere.
	for _, pt := range res.Points {
		if pt.ProxyRec.GBps <= 0 {
			t.Errorf("%d failures: recovery throughput %.3f GB/s", pt.FailedLinks, pt.ProxyRec.GBps)
		}
	}
}
