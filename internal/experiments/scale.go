package experiments

import (
	"math/rand"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// MiraShape is the full Mira partition: a 5D torus of 48K compute nodes
// (8x12x16x16x2 = 49,152). The incremental waterfill (DESIGN.md §13) is
// what makes a flow-level simulation at this scale tractable: the
// machine has ~half a million torus links, and a global re-level per
// event would make every activation O(links).
var MiraShape = torus.Shape{8, 12, 16, 16, 2}

// ScaleRanks is the rank count of the scale scenario: one communicating
// rank per 6 cores of the 786,432-core machine, the paper's largest
// weak-scaling point doubled twice.
const ScaleRanks = 131072

// ScaleResult reports the full-machine sparse-pattern run.
type ScaleResult struct {
	Shape   torus.Shape
	Nodes   int
	Ranks   int
	Done    int
	Aborted int
	// TotalGB is the volume submitted across all flows.
	TotalGB float64
	// SimSeconds is the run's makespan in simulated time; GBps is the
	// aggregate delivered throughput over it.
	SimSeconds float64
	GBps       float64
	// FullSweeps / IncSweeps are the engine's sweep counters: the whole
	// point of the scenario is IncSweeps >> FullSweeps.
	FullSweeps int64
	IncSweeps  int64
}

// scaleGeometry picks the scenario size: the full machine, or a small
// partition in quick mode — `make check` attaches an O(flows·links)
// auditor to every engine, so the quick point must stay cheap.
func scaleGeometry(quick bool) (torus.Shape, int) {
	if quick {
		return torus.Shape{4, 4, 4, 16, 2}, 8192
	}
	return MiraShape, ScaleRanks
}

// ScaleSparse runs the tentpole scenario: every rank sends one sparse-
// pattern message — mostly a halo exchange to a nearby rank, a tail of
// long-haul stragglers — with jittered release times spreading the
// activations over many distinct instants, plus a small link-failure
// campaign. The pattern mirrors the check package's GenerateSparse at
// full machine scale; correctness of the incremental engine against the
// global one is pinned there, so this runner only reports throughput
// and sweep statistics.
func ScaleSparse(opt Options) (ScaleResult, error) {
	shape, ranks := scaleGeometry(opt.Quick)
	tor, err := torus.New(shape)
	if err != nil {
		return ScaleResult{}, err
	}
	p := opt.params()
	e, err := newEngine(tor, p, opt.EngineHook)
	if err != nil {
		return ScaleResult{}, err
	}
	nodes := tor.Size()
	res := ScaleResult{Shape: shape, Nodes: nodes, Ranks: ranks}

	// The release jitter window: tight enough that tens of thousands of
	// flows are in flight at once — overlapping halo routes then chain
	// into machine-spanning flow-sharing components, the regime where a
	// global re-level pays O(component) per event and the dirty-set
	// cutoff is what keeps the simulation tractable.
	const jitter = 2e-3
	rng := rand.New(rand.NewSource(int64(ranks)))
	e.Reserve(ranks)
	var total int64
	scratch := make(torus.Coord, tor.Dims())
	for r := 0; r < ranks; r++ {
		src := torus.NodeID(r % nodes)
		var dst torus.NodeID
		if rng.Intn(10) < 7 {
			// Halo exchange: a short straight run along one dimension, so
			// neighboring senders' routes overlap link-for-link.
			tor.CoordInto(src, scratch)
			d := rng.Intn(tor.Dims())
			scratch[d] += 1 + rng.Intn(3)
			dst = tor.ID(scratch) // ID wraps out-of-range coordinates
		} else {
			// Long-haul stragglers keep some routes crossing the machine.
			dst = torus.NodeID(rng.Intn(nodes))
		}
		if dst == src {
			dst = (dst + 1) % torus.NodeID(nodes)
		}
		// Log-uniform 256 KB .. 2 MB.
		bytes := int64(256<<10) << uint(rng.Intn(4))
		total += bytes
		e.Submit(netsim.FlowSpec{
			Src: src, Dst: dst, Bytes: bytes,
			ExtraDelay: sim.Duration(rng.Float64() * jitter),
		})
	}
	// A sprinkle of mid-run link failures keeps the fault path honest at
	// scale without dominating the outcome.
	nFail := 8
	if opt.Quick {
		nFail = 2
	}
	for i := 0; i < nFail; i++ {
		e.FailLinkAt(rng.Intn(tor.NumTorusLinks()), sim.Time(rng.Float64()*jitter))
	}

	mk, err := e.Run()
	if err != nil {
		return ScaleResult{}, err
	}
	addSimTime(mk)
	res.Done, res.Aborted = e.Outcomes()
	res.TotalGB = float64(total) / 1e9
	res.SimSeconds = float64(mk)
	if res.SimSeconds > 0 {
		res.GBps = res.TotalGB / res.SimSeconds
	}
	res.FullSweeps, res.IncSweeps = e.SweepStats()
	return res, nil
}
