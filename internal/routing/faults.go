package routing

import (
	"fmt"

	"bgqflow/internal/torus"
)

// RouteAvoiding computes a minimal dimension-ordered route from src to
// dst that traverses no link for which failed returns true. It searches
// the dimension orders the zone-routing hardware can realize
// (longest-to-shortest first) and, within each dimension, both ring
// directions when the displacement allows a choice. It returns an error
// when no minimal dimension-ordered route avoids the failed links — the
// BG/Q's low-level fault masking can then still deliver packets over
// non-minimal escape paths, but those are outside this package's model.
func RouteAvoiding(t *torus.Torus, src, dst torus.NodeID, failed func(int) bool) (Route, error) {
	if failed == nil {
		return DeterministicRoute(t, src, dst), nil
	}
	var found Route
	ok := false
	base := t.DimsByExtentDesc()
	forEachPermutationOf(base, func(order []int) bool {
		if r, good := routeWithOrderAvoiding(t, src, dst, order, failed); good {
			found, ok = r, true
			return false
		}
		return true
	})
	if !ok {
		return Route{}, fmt.Errorf("routing: no minimal fault-free route from %d to %d", src, dst)
	}
	return found, nil
}

// routeWithOrderAvoiding walks one dimension order, preferring the
// minimal ring direction per dimension but taking the opposite (equally
// long or longer is not allowed — only direction ties give a choice)
// when the minimal side is blocked.
func routeWithOrderAvoiding(t *torus.Torus, src, dst torus.NodeID, order []int, failed func(int) bool) (Route, bool) {
	cur := t.Coord(src)
	target := t.Coord(dst)
	var links []int
	for _, dim := range order {
		hops, dir := t.Displacement(dim, cur[dim], target[dim])
		if hops == 0 {
			continue
		}
		// Candidate directions: the minimal one, plus the opposite when
		// the two ways around the ring are equally long.
		dirs := []torus.Direction{dir}
		if 2*hops == t.Extent(dim) {
			dirs = append(dirs, -dir)
		}
		routed := false
		for _, d := range dirs {
			seg, ok := walkRing(t, cur, dim, d, hops, failed)
			if ok {
				links = append(links, seg...)
				cur[dim] = target[dim]
				routed = true
				break
			}
		}
		if !routed {
			return Route{}, false
		}
	}
	return Route{Src: src, Dst: dst, Links: links}, true
}

// walkRing collects the directed links of a fixed-length ring walk,
// failing if any is failed. cur is not modified.
func walkRing(t *torus.Torus, cur torus.Coord, dim int, dir torus.Direction, hops int, failed func(int) bool) ([]int, bool) {
	c := cur.Clone()
	links := make([]int, 0, hops)
	for h := 0; h < hops; h++ {
		l := t.LinkID(t.ID(c), dim, dir)
		if failed(l) {
			return nil, false
		}
		links = append(links, l)
		c[dim] = t.Wrap(dim, c[dim]+int(dir))
	}
	return links, true
}

// forEachPermutationOf is Heap's algorithm over a copy of base, identity
// first, stopping when fn returns false.
func forEachPermutationOf(base []int, fn func([]int) bool) {
	perm := append([]int(nil), base...)
	n := len(perm)
	if !fn(perm) {
		return
	}
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
