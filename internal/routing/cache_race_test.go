package routing

import (
	"sync"
	"sync/atomic"
	"testing"

	"bgqflow/internal/torus"
)

// TestCacheCountersAcrossEpochBoundary pins the counter semantics at an
// epoch boundary, single-threaded first: Invalidate zeroes both
// counters, a cold pass over P pairs is exactly P misses, a warm pass
// exactly P hits — no lookup is double-counted or carried across the
// boundary.
func TestCacheCountersAcrossEpochBoundary(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	pairs := [][2]torus.NodeID{{0, 7}, {3, 100}, {5, 64}, {9, 33}}
	for epoch := 0; epoch < 3; epoch++ {
		for _, pr := range pairs {
			c.Route(pr[0], pr[1])
		}
		if h, m, _ := c.Counts(); h != 0 || m != uint64(len(pairs)) {
			t.Fatalf("epoch %d cold pass: counts (%d, %d), want (0, %d)", epoch, h, m, len(pairs))
		}
		for _, pr := range pairs {
			c.Route(pr[0], pr[1])
		}
		if h, m, _ := c.Counts(); h != uint64(len(pairs)) || m != uint64(len(pairs)) {
			t.Fatalf("epoch %d warm pass: counts (%d, %d), want (%d, %d)", epoch, h, m, len(pairs), len(pairs))
		}
		c.Invalidate()
		if h, m, inv := c.Counts(); h != 0 || m != 0 || inv != uint64(epoch+1) {
			t.Fatalf("after Invalidate %d: counts (%d, %d, %d), want (0, 0, %d)", epoch, h, m, inv, epoch+1)
		}
	}
}

// TestCacheConcurrentInvalidateAndLookups hammers the cache with
// readers while another goroutine fires Invalidate (the mid-campaign
// failure-event pattern), asserting the counters stay coherent:
// hits+misses never exceed the lookups issued (a stale count leaking
// across a reset would eventually trip this in combination with the
// final exactness check), routes stay correct throughout, and once the
// readers quiesce the boundary semantics are exact again. Run under
// -race this also proves the lock discipline around the counter
// resets.
func TestCacheConcurrentInvalidateAndLookups(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	pairs := [][2]torus.NodeID{{0, 7}, {3, 100}, {5, 64}, {9, 33}, {12, 80}, {1, 2}}
	want := make([]Route, len(pairs))
	for i, pr := range pairs {
		want[i] = DeterministicRoute(tor, pr[0], pr[1])
	}

	const readers = 4
	const rounds = 2000
	var issued atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pi := (i + g) % len(pairs)
				issued.Add(1)
				r := c.Route(pairs[pi][0], pairs[pi][1])
				if len(r.Links) != len(want[pi].Links) {
					t.Errorf("reader %d: route %d->%d has %d links, want %d",
						g, pairs[pi][0], pairs[pi][1], len(r.Links), len(want[pi].Links))
					return
				}
			}
		}(g)
	}
	var invWG sync.WaitGroup
	invWG.Add(1)
	go func() {
		defer invWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Invalidate()
			h, m, _ := c.Counts()
			if n := issued.Load(); h+m > n+readers {
				// Every counted lookup was issued; allow the readers'
				// in-flight lookups as slack.
				t.Errorf("counts (%d, %d) exceed %d issued lookups", h, m, n)
				return
			}
		}
	}()
	wg.Wait()
	// The readers are done; the invalidator checks stop only between
	// rounds, so closing now is race-free.
	close(stop)
	invWG.Wait()

	// Quiesced: the boundary semantics must be exact again.
	c.Invalidate()
	if h, m, _ := c.Counts(); h != 0 || m != 0 {
		t.Fatalf("counts (%d, %d) after quiesced Invalidate, want (0, 0)", h, m)
	}
	for _, pr := range pairs {
		c.Route(pr[0], pr[1])
		c.Route(pr[0], pr[1])
	}
	if h, m, _ := c.Counts(); h != uint64(len(pairs)) || m != uint64(len(pairs)) {
		t.Fatalf("counts (%d, %d) after quiesced passes, want (%d, %d)", h, m, len(pairs), len(pairs))
	}
}
