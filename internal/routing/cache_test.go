package routing

import (
	"testing"

	"bgqflow/internal/torus"
)

func TestCacheMatchesUncachedRoutes(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	for src := torus.NodeID(0); src < 16; src++ {
		for _, dst := range []torus.NodeID{0, 1, 63, torus.NodeID(tor.Size() - 1)} {
			want := DeterministicRoute(tor, src, dst)
			for pass := 0; pass < 2; pass++ { // miss then hit
				got := c.Route(src, dst)
				if len(got.Links) != len(want.Links) {
					t.Fatalf("cache route %d->%d has %d hops, want %d", src, dst, len(got.Links), len(want.Links))
				}
				for i := range want.Links {
					if got.Links[i] != want.Links[i] {
						t.Fatalf("cache route %d->%d diverges at hop %d", src, dst, i)
					}
				}
			}
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats hits=%d misses=%d, want both nonzero", hits, misses)
	}
}

func TestCacheRouteWithOrder(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 3, 4})
	c := NewCache(tor)
	order := []int{0, 1, 2}
	want := RouteWithOrder(tor, 0, 23, order)
	got := c.RouteWithOrder(0, 23, order)
	gotAgain := c.RouteWithOrder(0, 23, order)
	for i := range want.Links {
		if got.Links[i] != want.Links[i] || gotAgain.Links[i] != want.Links[i] {
			t.Fatalf("ordered cache route diverges at hop %d", i)
		}
	}
	// Distinct orders are distinct entries.
	other := c.RouteWithOrder(0, 23, []int{2, 1, 0})
	if len(other.Links) != len(want.Links) {
		t.Fatalf("minimal routes must have equal hop count: %d vs %d", len(other.Links), len(want.Links))
	}
	if c.Len() < 2 {
		t.Fatalf("cache holds %d entries, want >= 2 (one per order)", c.Len())
	}
}

func TestCacheLinksHaveNoSpareCapacity(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	r := c.Route(0, torus.NodeID(tor.Size()-1))
	if cap(r.Links) != len(r.Links) {
		t.Fatalf("cached Links cap %d != len %d; append would corrupt the cache", cap(r.Links), len(r.Links))
	}
	// Appending (as ionet does for the 11th link) must not change the
	// cached entry.
	_ = append(r.Links, -1)
	again := c.Route(0, torus.NodeID(tor.Size()-1))
	for _, l := range again.Links {
		if l == -1 {
			t.Fatal("append to a returned route corrupted the cache")
		}
	}
}

func TestCachePurgeAndDisable(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	c.Route(0, 5)
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries behind")
	}
	if !c.Enabled() {
		t.Fatal("purge must keep the cache enabled")
	}
	c.Route(0, 5)
	c.Disable()
	if c.Len() != 0 || c.Enabled() {
		t.Fatal("disable must purge and deactivate")
	}
	// Lookups still work, bypassing the cache.
	want := DeterministicRoute(tor, 0, 5)
	got := c.Route(0, 5)
	for i := range want.Links {
		if got.Links[i] != want.Links[i] {
			t.Fatal("disabled cache returned a wrong route")
		}
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored a route")
	}
}

func TestCacheInvalidatePerFailureEvent(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	c.Route(0, 5)
	c.Route(0, 9)
	if c.Len() != 2 || c.Epoch() != 0 {
		t.Fatalf("len=%d epoch=%d before any failure, want 2/0", c.Len(), c.Epoch())
	}

	// First failure event: purged, epoch bumped, cache still live.
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("Invalidate left entries behind")
	}
	if !c.Enabled() {
		t.Fatal("Invalidate must not disable the cache")
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d after one event, want 1", c.Epoch())
	}

	// Lookups resume and repopulate; a second event purges again. This is
	// the regression: invalidation happens per failure event, not once.
	c.Route(0, 5)
	if c.Len() != 1 {
		t.Fatal("post-invalidate lookup was not cached")
	}
	c.Invalidate()
	if c.Len() != 0 || c.Epoch() != 2 {
		t.Fatalf("len=%d epoch=%d after second event, want 0/2", c.Len(), c.Epoch())
	}

	// An explicitly disabled cache stays disabled across failure events.
	c.Disable()
	c.Invalidate()
	if c.Enabled() {
		t.Fatal("Invalidate re-enabled a disabled cache")
	}
	c.Route(0, 5)
	if c.Len() != 0 {
		t.Fatal("disabled cache stored a route after Invalidate")
	}
}

func TestCacheConcurrentReaders(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	c := NewCache(tor)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(seed int) {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				src := torus.NodeID((seed*37 + i) % tor.Size())
				dst := torus.NodeID((seed*91 + i*13) % tor.Size())
				r := c.Route(src, dst)
				want := tor.HopDistance(src, dst)
				if len(r.Links) != want {
					t.Errorf("route %d->%d has %d hops, want %d", src, dst, len(r.Links), want)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// BenchmarkRouteCacheHitMiss quantifies the route cache against the raw
// route walk: "miss" includes the computation plus insertion, "hit" is
// the steady-state per-flow cost inside Engine.Submit.
func BenchmarkRouteCacheHitMiss(b *testing.B) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = DeterministicRoute(tor, src, dst)
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		c := NewCache(tor)
		for i := 0; i < b.N; i++ {
			s := torus.NodeID(i % tor.Size())
			c.Purge()
			_ = c.Route(s, dst)
		}
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		c := NewCache(tor)
		c.Route(src, dst)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Route(src, dst)
		}
	})
}

// TestCacheCounts covers the observability counters: hits and misses
// accumulate within one failure epoch, Invalidate resets them (per-epoch
// hit rates) while counting itself as an invalidation, and disabled
// lookups count as neither.
func TestCacheCounts(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := NewCache(tor)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	if h, m, inv := c.Counts(); h != 0 || m != 0 || inv != 0 {
		t.Fatalf("fresh cache counts = (%d,%d,%d), want zeros", h, m, inv)
	}
	c.Route(src, dst)             // miss
	c.Route(src, dst)             // hit
	c.Route(src, dst)             // hit
	c.Route(src, torus.NodeID(3)) // miss
	if h, m, inv := c.Counts(); h != 2 || m != 2 || inv != 0 {
		t.Fatalf("counts = (%d,%d,%d), want (2,2,0)", h, m, inv)
	}

	c.Invalidate()
	if h, m, inv := c.Counts(); h != 0 || m != 0 || inv != 1 {
		t.Fatalf("post-Invalidate counts = (%d,%d,%d), want (0,0,1)", h, m, inv)
	}
	c.Route(src, dst) // cold again: miss
	c.Route(src, dst) // hit
	if h, m, inv := c.Counts(); h != 1 || m != 1 || inv != 1 {
		t.Fatalf("second-epoch counts = (%d,%d,%d), want (1,1,1)", h, m, inv)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("Stats = (%d,%d), want (1,1) — same window as Counts", h, m)
	}

	c.Disable()
	c.Route(src, dst)
	if h, m, _ := c.Counts(); h != 1 || m != 1 {
		t.Fatalf("disabled lookups must not count, got (%d,%d)", h, m)
	}
}
