package routing_test

import (
	"fmt"

	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func ExampleDeterministicRoute() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	r := routing.DeterministicRoute(tor, 0, torus.NodeID(tor.Size()-1))
	fmt.Println(routing.DescribeRoute(tor, r))
	// Output: (0,0,0,0,0) -C -D +A +B +E (1,1,3,3,1)
}

func ExampleSelectZone() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	fmt.Println(routing.SelectZone(tor, 0, 127, 512))
	fmt.Println(routing.SelectZone(tor, 0, 127, 16<<10))
	// Output:
	// zone3(fixed-order)
	// zone2(deterministic)
}
