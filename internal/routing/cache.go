package routing

import (
	"sync"
	"sync/atomic"

	"bgqflow/internal/torus"
)

// cacheKey identifies one cached route: endpoints plus the packed
// dimension order the route was computed under.
type cacheKey struct {
	src, dst torus.NodeID
	order    uint32
}

// packOrder encodes a dimension order into a uint32, 4 bits per
// dimension (1-based so the zero value never collides with a real
// order). It reports false when the order does not fit (more than 8
// dimensions), in which case callers skip the cache.
func packOrder(order []int) (uint32, bool) {
	if len(order) > 8 {
		return 0, false
	}
	var sig uint32
	for i, d := range order {
		sig |= uint32(d+1) << (4 * i)
	}
	return sig, true
}

// Cache memoizes dimension-ordered routes on one torus. Deterministic
// routes are pure functions of (src, dst, dimension order) on a fixed
// topology, and the flow simulator asks for the same routes once per
// flow — across collective I/O rounds, proxy legs, and repeated
// engine runs over one network — so memoizing them removes the route
// walk and its allocation from the per-flow hot path.
//
// Cached routes share one exactly-sized Links slice per entry: callers
// must treat Route.Links as read-only. Appending to it is safe (the
// slice has no spare capacity, so append always copies), which is how
// ionet extends bridge routes with the 11th link.
//
// A Cache is safe for concurrent use. Fault handling: topology changes
// (failed links) do not change what DeterministicRoute returns, so cached
// default routes stay byte-identical across failures — but no entry
// memoized before a failure event may be served afterwards without a
// fresh look at the world. Every failure event therefore calls
// Invalidate, which purges the map and bumps the failure epoch; the cache
// then repopulates from current state and stays hot for the rest of the
// campaign (DESIGN.md §8 documents the invalidation rule). Disable
// remains for callers that want the permanent bypass.
type Cache struct {
	t        *torus.Torus
	defOrder []int
	defSig   uint32

	mu       sync.RWMutex
	routes   map[cacheKey][]int
	disabled bool
	epoch    uint64 // failure events seen (Invalidate calls)

	hits, misses atomic.Uint64
}

// NewCache returns an empty route cache for torus t.
func NewCache(t *torus.Torus) *Cache {
	defOrder := t.DimsByExtentDesc()
	sig, _ := packOrder(defOrder)
	return &Cache{
		t:        t,
		defOrder: defOrder,
		defSig:   sig,
		routes:   make(map[cacheKey][]int),
	}
}

// Torus reports the torus the cache routes on.
func (c *Cache) Torus() *torus.Torus { return c.t }

// Route returns the default deterministic route (longest-to-shortest
// dimension order) from src to dst, served from the cache when possible.
func (c *Cache) Route(src, dst torus.NodeID) Route {
	return c.route(src, dst, c.defOrder, c.defSig)
}

// RouteWithOrder returns the dimension-ordered route from src to dst
// visiting dimensions in dimOrder, served from the cache when possible.
func (c *Cache) RouteWithOrder(src, dst torus.NodeID, dimOrder []int) Route {
	sig, ok := packOrder(dimOrder)
	if !ok {
		return RouteWithOrder(c.t, src, dst, dimOrder)
	}
	return c.route(src, dst, dimOrder, sig)
}

func (c *Cache) route(src, dst torus.NodeID, order []int, sig uint32) Route {
	key := cacheKey{src, dst, sig}
	c.mu.RLock()
	disabled := c.disabled
	links, ok := c.routes[key]
	if ok && !disabled {
		// Count the hit while still holding the read lock: Invalidate
		// resets the counters under the write lock, so counting after
		// RUnlock would let a concurrent Invalidate zero the counters
		// first and leak this epoch-N hit into epoch N+1 — observers
		// would see hits > 0 on a cache that is provably empty.
		c.hits.Add(1)
	}
	c.mu.RUnlock()
	if disabled {
		return RouteWithOrder(c.t, src, dst, order)
	}
	if ok {
		return Route{Src: src, Dst: dst, Links: links}
	}
	r := RouteWithOrder(c.t, src, dst, order)
	// Store an exactly-sized copy so callers appending to Links always
	// reallocate instead of scribbling over the cached slice.
	links = make([]int, len(r.Links))
	copy(links, r.Links)
	c.mu.Lock()
	if !c.disabled {
		// The miss is counted in the same critical section that stores
		// the entry, so it always lands in the epoch whose map it
		// populated, even when an Invalidate slid in since the read.
		c.misses.Add(1)
		c.routes[key] = links
	}
	c.mu.Unlock()
	return Route{Src: src, Dst: dst, Links: links}
}

// Purge drops every cached route but keeps the cache active.
func (c *Cache) Purge() {
	c.mu.Lock()
	c.routes = make(map[cacheKey][]int)
	c.mu.Unlock()
}

// Invalidate records one failure event: it purges every cached route and
// advances the failure epoch. Unlike Disable the cache stays active, so
// lookups repopulate it from post-failure state — the memoized routes are
// pure functions of the (unchanged) topology, and fail-stop checks
// against failed links are made by the submitting layer against live
// state, never against the cache. Each failure event must call
// Invalidate again: repeated calls purge idempotently, and an explicitly
// Disabled cache stays disabled. The hit/miss counters reset with the
// purge — they describe the current epoch's (cold-started) cache, so
// observability reads hit rates per failure epoch rather than blended
// across purges.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.routes = make(map[cacheKey][]int)
	c.epoch++
	c.hits.Store(0)
	c.misses.Store(0)
	c.mu.Unlock()
}

// Epoch reports how many failure events (Invalidate calls) the cache has
// absorbed.
func (c *Cache) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Disable purges the cache and makes every subsequent lookup compute a
// fresh route without storing it. The network layer calls this when a
// link fails: from then on route requests must go through the planning
// layer's fault-aware paths, never a memoized one.
func (c *Cache) Disable() {
	c.mu.Lock()
	c.disabled = true
	c.routes = make(map[cacheKey][]int)
	c.mu.Unlock()
}

// Enabled reports whether lookups are served from the cache.
func (c *Cache) Enabled() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return !c.disabled
}

// Len reports the number of cached routes.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.routes)
}

// Stats reports cache hits and misses since the last Invalidate (or
// construction). Lookups made while the cache is disabled count as
// neither.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Counts reports the cache's observability counters: hits and misses in
// the current failure epoch (both reset by Invalidate, which cold-starts
// the cache) and the number of invalidations absorbed so far.
func (c *Cache) Counts() (hits, misses, invalidations uint64) {
	hits, misses = c.hits.Load(), c.misses.Load()
	return hits, misses, c.Epoch()
}
