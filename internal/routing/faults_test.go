package routing

import (
	"math/rand"
	"testing"

	"bgqflow/internal/torus"
)

func TestRouteAvoidingNilPredicateIsDefault(t *testing.T) {
	tor := mira128()
	r, err := RouteAvoiding(tor, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := DeterministicRoute(tor, 0, 100)
	if len(r.Links) != len(d.Links) {
		t.Fatal("nil predicate should give the default route")
	}
	for i := range r.Links {
		if r.Links[i] != d.Links[i] {
			t.Fatal("nil predicate should give the default route")
		}
	}
}

func TestRouteAvoidingDodgesFailedLink(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 0, 0, 0})
	def := DeterministicRoute(tor, src, dst)
	dead := def.Links[0]
	failed := func(l int) bool { return l == dead }
	r, err := RouteAvoiding(tor, src, dst, failed)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range r.Links {
		if l == dead {
			t.Fatal("route crosses the failed link")
		}
	}
	if r.Hops() != tor.HopDistance(src, dst) {
		t.Fatalf("fault-avoiding route not minimal: %d hops", r.Hops())
	}
	// Walk it to the destination.
	cur := tor.Coord(src)
	for _, l := range r.Links {
		from, dim, dir := tor.LinkFrom(l)
		if from != tor.ID(cur) {
			t.Fatal("route discontinuous")
		}
		cur[dim] = tor.Wrap(dim, cur[dim]+int(dir))
	}
	if tor.ID(cur) != dst {
		t.Fatal("route does not reach the destination")
	}
}

func TestRouteAvoidingUsesDirectionTies(t *testing.T) {
	// 1-D ring of 4: 0->2 is a tie; fail the + side, expect the - side.
	tor := torus.MustNew(torus.Shape{4})
	plusFirst := tor.LinkID(0, 0, torus.Plus)
	failed := func(l int) bool { return l == plusFirst }
	r, err := RouteAvoiding(tor, 0, 2, failed)
	if err != nil {
		t.Fatal(err)
	}
	_, _, dir := tor.LinkFrom(r.Links[0])
	if dir != torus.Minus {
		t.Fatal("route did not take the minus side of the tie")
	}
}

func TestRouteAvoidingErrorsWhenCut(t *testing.T) {
	// 1-D ring of 8: 0->1 has a single minimal route (the + link); fail
	// it and there is no minimal fault-free route.
	tor := torus.MustNew(torus.Shape{8})
	dead := tor.LinkID(0, 0, torus.Plus)
	if _, err := RouteAvoiding(tor, 0, 1, func(l int) bool { return l == dead }); err == nil {
		t.Fatal("cut route accepted")
	}
}

func TestRouteAvoidingRandomFaults(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		// Fail 1% of links.
		dead := map[int]bool{}
		for l := 0; l < tor.NumTorusLinks(); l++ {
			if rng.Intn(100) == 0 {
				dead[l] = true
			}
		}
		src := torus.NodeID(rng.Intn(tor.Size()))
		dst := torus.NodeID(rng.Intn(tor.Size()))
		r, err := RouteAvoiding(tor, src, dst, func(l int) bool { return dead[l] })
		if err != nil {
			continue // legitimately cut
		}
		for _, l := range r.Links {
			if dead[l] {
				t.Fatal("fault-avoiding route crossed a failed link")
			}
		}
		if r.Hops() != tor.HopDistance(src, dst) {
			t.Fatal("route not minimal")
		}
	}
}
