// Package routing implements the Blue Gene/Q's user-visible routing
// behaviour on a torus from package torus.
//
// The BG/Q routes every packet dimension-ordered. Deterministic routing
// orders the dimensions longest extent first ("longest to shortest") and,
// within each dimension, travels the minimal way around the ring. Dynamic
// routing is still dimension ordered but the order is programmable through
// four "zone" IDs (0-3, selectable via the PAMI_ROUTING environment
// variable on the real machine):
//
//	zone 0: longest-to-shortest, dimensions of equal length in random order
//	zone 1: unrestricted - dimensions traversed in a random order
//	zone 2: deterministic longest-to-shortest (stable tie-break)
//	zone 3: deterministic fixed A,B,C,D,E order
//
// Zones 2 and 3 are fully deterministic: given the message size the path
// is known before the message is routed. That property is what the paper's
// user-space multipath mechanism exploits: because the default single path
// is known a priori, intermediate nodes can be placed so that the two-leg
// routes do not share links.
//
// The real machine picks a zone from the message size and a "flexibility"
// metric computed from the torus size and the hop distance; the selection
// table is experiment-derived and hard coded in the low-level libraries.
// SelectZone implements a documented approximation with the same shape:
// small messages use the fully deterministic zones, large messages between
// far-apart nodes use the more flexible zones.
package routing

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"bgqflow/internal/torus"
)

// Zone is a BG/Q routing zone ID.
type Zone int

const (
	// ZoneLongestRandomTies routes longest-to-shortest; dimensions of
	// equal length are ordered randomly per message.
	ZoneLongestRandomTies Zone = 0
	// ZoneUnrestricted routes dimensions in a random order per message.
	ZoneUnrestricted Zone = 1
	// ZoneDeterministic routes longest-to-shortest with a stable
	// tie-break (ascending dimension index). This is the default
	// deterministic routing the paper's algorithms assume.
	ZoneDeterministic Zone = 2
	// ZoneFixedOrder routes dimensions in fixed A,B,C,D,E order.
	ZoneFixedOrder Zone = 3
)

// String names the zone.
func (z Zone) String() string {
	switch z {
	case ZoneLongestRandomTies:
		return "zone0(longest,random-ties)"
	case ZoneUnrestricted:
		return "zone1(unrestricted)"
	case ZoneDeterministic:
		return "zone2(deterministic)"
	case ZoneFixedOrder:
		return "zone3(fixed-order)"
	}
	return fmt.Sprintf("zone%d(invalid)", int(z))
}

// Route is the directed-link path a message takes from Src to Dst.
type Route struct {
	Src, Dst torus.NodeID
	// Links holds torus link IDs (see torus.LinkID) in traversal order.
	// Empty when Src == Dst.
	Links []int
}

// Hops returns the number of links traversed.
func (r Route) Hops() int { return len(r.Links) }

// String renders the route for diagnostics.
func (r Route) String() string {
	return fmt.Sprintf("route %d->%d (%d hops)", r.Src, r.Dst, len(r.Links))
}

// SharesLink reports whether two routes traverse any common directed link.
func SharesLink(a, b Route) bool {
	if len(a.Links) == 0 || len(b.Links) == 0 {
		return false
	}
	var small, large []int
	if len(a.Links) < len(b.Links) {
		small, large = a.Links, b.Links
	} else {
		small, large = b.Links, a.Links
	}
	set := make(map[int]struct{}, len(small))
	for _, l := range small {
		set[l] = struct{}{}
	}
	for _, l := range large {
		if _, ok := set[l]; ok {
			return true
		}
	}
	return false
}

// RouteWithOrder computes the dimension-ordered route from src to dst
// visiting dimensions in dimOrder. Within each dimension the message takes
// the minimal way around the ring (ties broken toward the positive
// direction, matching torus.Displacement).
func RouteWithOrder(t *torus.Torus, src, dst torus.NodeID, dimOrder []int) Route {
	if len(dimOrder) != t.Dims() {
		panic(fmt.Sprintf("routing: dim order %v does not cover %d dimensions", dimOrder, t.Dims()))
	}
	cur := t.Coord(src)
	target := t.Coord(dst)
	var links []int
	for _, dim := range dimOrder {
		hops, dir := t.Displacement(dim, cur[dim], target[dim])
		for h := 0; h < hops; h++ {
			from := t.ID(cur)
			links = append(links, t.LinkID(from, dim, dir))
			cur[dim] = t.Wrap(dim, cur[dim]+int(dir))
		}
	}
	if !cur.Equal(target) {
		panic(fmt.Sprintf("routing: route from %d did not reach %d", src, dst))
	}
	return Route{Src: src, Dst: dst, Links: links}
}

// DeterministicRoute computes the BG/Q default deterministic route:
// longest-to-shortest dimension order with a stable tie-break. This is the
// path the paper's algorithms assume is known a priori.
func DeterministicRoute(t *torus.Torus, src, dst torus.NodeID) Route {
	return RouteWithOrder(t, src, dst, t.DimsByExtentDesc())
}

// Router routes messages under a chosen zone. Routers using the random
// zones (0 and 1) draw from their own seeded RNG, so runs remain
// reproducible.
type Router struct {
	t    *torus.Torus
	zone Zone
	rng  *rand.Rand
}

// NewRouter returns a router for torus t under the given zone. seed feeds
// the RNG used by the random zones; it is ignored for zones 2 and 3.
func NewRouter(t *torus.Torus, zone Zone, seed int64) (*Router, error) {
	if zone < 0 || zone > 3 {
		return nil, fmt.Errorf("routing: invalid zone %d", int(zone))
	}
	return &Router{t: t, zone: zone, rng: rand.New(rand.NewSource(seed))}, nil
}

// Zone reports the router's zone.
func (r *Router) Zone() Zone { return r.zone }

// Torus reports the torus the router routes on.
func (r *Router) Torus() *torus.Torus { return r.t }

// Route computes the path from src to dst under the router's zone.
// For zones 2 and 3 the result is a pure function of (src, dst); for zones
// 0 and 1 successive calls may return different dimension orders.
func (r *Router) Route(src, dst torus.NodeID) Route {
	return RouteWithOrder(r.t, src, dst, r.dimOrder())
}

func (r *Router) dimOrder() []int {
	switch r.zone {
	case ZoneFixedOrder:
		order := make([]int, r.t.Dims())
		for i := range order {
			order[i] = i
		}
		return order
	case ZoneDeterministic:
		return r.t.DimsByExtentDesc()
	case ZoneLongestRandomTies:
		order := r.t.DimsByExtentDesc()
		// Shuffle runs of equal extent.
		i := 0
		for i < len(order) {
			j := i + 1
			for j < len(order) && r.t.Extent(order[j]) == r.t.Extent(order[i]) {
				j++
			}
			run := order[i:j]
			r.rng.Shuffle(len(run), func(a, b int) { run[a], run[b] = run[b], run[a] })
			i = j
		}
		return order
	case ZoneUnrestricted:
		order := make([]int, r.t.Dims())
		for i := range order {
			order[i] = i
		}
		r.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		return order
	}
	panic("routing: invalid zone")
}

// Flexibility approximates the BG/Q flexibility metric for a node pair:
// the number of dimensions the message must traverse, plus one for every
// traversed dimension whose ring offers genuine two-way choice (hop
// distance strictly less than half the extent). Higher values mean the
// network has more routing freedom for this pair.
func Flexibility(t *torus.Torus, src, dst torus.NodeID) int {
	cs, cd := t.Coord(src), t.Coord(dst)
	f := 0
	for dim := range cs {
		hops, _ := t.Displacement(dim, cs[dim], cd[dim])
		if hops == 0 {
			continue
		}
		f++
		if 2*hops < t.Extent(dim) {
			f++
		}
	}
	return f
}

// Zone-selection size thresholds (bytes). The real table is
// experiment-derived and hard coded in the BG/Q system software; these
// values give the same qualitative behaviour: short messages stay fully
// deterministic, long messages between flexible pairs spread out.
const (
	zoneSmallMessage = 2 << 10  // below this: fixed-order zone 3
	zoneMediumMsg    = 64 << 10 // below this: deterministic zone 2
)

// SelectZone returns the zone the system software would route a message of
// msgSize bytes between src and dst with, per the approximation documented
// on the package.
func SelectZone(t *torus.Torus, src, dst torus.NodeID, msgSize int64) Zone {
	switch {
	case msgSize < zoneSmallMessage:
		return ZoneFixedOrder
	case msgSize < zoneMediumMsg:
		return ZoneDeterministic
	}
	if Flexibility(t, src, dst) >= t.Dims() {
		return ZoneUnrestricted
	}
	return ZoneLongestRandomTies
}

// DescribeRoute renders the hop-by-hop path for diagnostics and the
// toruscalc tool.
func DescribeRoute(t *torus.Torus, r Route) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", t.Coord(r.Src))
	for _, l := range r.Links {
		_, dim, dir := t.LinkFrom(l)
		fmt.Fprintf(&b, " %s%s", dir, torus.DimNames[dim])
	}
	fmt.Fprintf(&b, " %v", t.Coord(r.Dst))
	return b.String()
}

// SortLinks returns a sorted copy of the route's link IDs; used by tests
// and by disjointness diagnostics.
func SortLinks(r Route) []int {
	out := append([]int(nil), r.Links...)
	sort.Ints(out)
	return out
}
