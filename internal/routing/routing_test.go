package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bgqflow/internal/torus"
)

func mira128() *torus.Torus { return torus.MustNew(torus.Shape{2, 2, 4, 4, 2}) }

// validateRoute checks that a route is a dimension-ordered walk of unit
// hops from src to dst with minimal per-dimension distances.
func validateRoute(t *testing.T, tor *torus.Torus, r Route) {
	t.Helper()
	cur := tor.Coord(r.Src)
	lastDim := -1
	seenDims := make(map[int]bool)
	for i, l := range r.Links {
		from, dim, dir := tor.LinkFrom(l)
		if from != tor.ID(cur) {
			t.Fatalf("hop %d departs from %v, position is %v", i, tor.Coord(from), cur)
		}
		if dim != lastDim {
			if seenDims[dim] {
				t.Fatalf("hop %d revisits dimension %d: not dimension-ordered", i, dim)
			}
			seenDims[dim] = true
			lastDim = dim
		}
		cur[dim] = tor.Wrap(dim, cur[dim]+int(dir))
	}
	if tor.ID(cur) != r.Dst {
		t.Fatalf("route ends at %v, want %v", cur, tor.Coord(r.Dst))
	}
	if got, want := r.Hops(), tor.HopDistance(r.Src, r.Dst); got != want {
		t.Fatalf("route has %d hops, minimal is %d", got, want)
	}
}

func TestDeterministicRouteValid(t *testing.T) {
	tor := mira128()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		src := torus.NodeID(rng.Intn(tor.Size()))
		dst := torus.NodeID(rng.Intn(tor.Size()))
		validateRoute(t, tor, DeterministicRoute(tor, src, dst))
	}
}

func TestDeterministicRouteIsDeterministic(t *testing.T) {
	tor := mira128()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	a := DeterministicRoute(tor, src, dst)
	b := DeterministicRoute(tor, src, dst)
	if len(a.Links) != len(b.Links) {
		t.Fatal("deterministic route changed length between calls")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("deterministic route changed path between calls")
		}
	}
}

func TestDeterministicRouteLongestFirst(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 1, 5, 1})
	r := DeterministicRoute(tor, src, dst)
	// First traversed dimension must be D (extent 16).
	_, dim, _ := tor.LinkFrom(r.Links[0])
	if dim != 3 {
		t.Fatalf("first hop in dimension %d, want 3 (D, the longest)", dim)
	}
	validateRoute(t, tor, r)
}

func TestSelfRouteEmpty(t *testing.T) {
	tor := mira128()
	r := DeterministicRoute(tor, 5, 5)
	if r.Hops() != 0 {
		t.Fatalf("self route has %d hops", r.Hops())
	}
}

func TestRouteWithOrderRespectsOrder(t *testing.T) {
	tor := mira128()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 2, 2, 1})
	order := []int{4, 3, 2, 1, 0}
	r := RouteWithOrder(tor, src, dst, order)
	validDims := []int{}
	last := -1
	for _, l := range r.Links {
		_, dim, _ := tor.LinkFrom(l)
		if dim != last {
			validDims = append(validDims, dim)
			last = dim
		}
	}
	for i := range validDims {
		if validDims[i] != order[i] {
			t.Fatalf("traversed dims %v, want prefix of %v", validDims, order)
		}
	}
}

func TestAllZonesProduceValidMinimalRoutes(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	for z := Zone(0); z <= 3; z++ {
		r, err := NewRouter(tor, z, 42)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(z) + 9))
		for i := 0; i < 100; i++ {
			src := torus.NodeID(rng.Intn(tor.Size()))
			dst := torus.NodeID(rng.Intn(tor.Size()))
			validateRoute(t, tor, r.Route(src, dst))
		}
	}
}

func TestZoneDeterministicStable(t *testing.T) {
	tor := mira128()
	r, _ := NewRouter(tor, ZoneDeterministic, 1)
	a := r.Route(0, 100)
	b := r.Route(0, 100)
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("zone 2 route not stable")
		}
	}
}

func TestZoneUnrestrictedVaries(t *testing.T) {
	// On a torus with several long dimensions, zone 1 should eventually
	// produce at least two distinct dimension orders for a far pair.
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 4})
	r, _ := NewRouter(tor, ZoneUnrestricted, 7)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 1, 1, 1})
	first := r.Route(src, dst)
	for i := 0; i < 50; i++ {
		next := r.Route(src, dst)
		if next.Links[0] != first.Links[0] {
			return // saw variation
		}
	}
	t.Fatal("zone 1 produced the same first hop 50 times")
}

func TestInvalidZoneRejected(t *testing.T) {
	if _, err := NewRouter(mira128(), Zone(4), 0); err == nil {
		t.Fatal("zone 4 accepted")
	}
	if _, err := NewRouter(mira128(), Zone(-1), 0); err == nil {
		t.Fatal("zone -1 accepted")
	}
}

func TestSharesLink(t *testing.T) {
	tor := mira128()
	a := DeterministicRoute(tor, 0, torus.NodeID(tor.Size()-1))
	if !SharesLink(a, a) {
		t.Fatal("route does not share links with itself")
	}
	// A route and its reverse use opposite directed links.
	b := DeterministicRoute(tor, torus.NodeID(tor.Size()-1), 0)
	if SharesLink(a, b) {
		t.Fatal("forward and reverse routes share a directed link")
	}
	empty := Route{Src: 3, Dst: 3}
	if SharesLink(a, empty) {
		t.Fatal("empty route shares links")
	}
}

func TestFlexibility(t *testing.T) {
	tor := mira128() // 2x2x4x4x2
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	if got := Flexibility(tor, src, src); got != 0 {
		t.Errorf("self flexibility = %d, want 0", got)
	}
	// Move 1 hop in C (extent 4): traversed (+1) and 2*1 < 4 (+1) = 2.
	d1 := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	if got := Flexibility(tor, src, d1); got != 2 {
		t.Errorf("flexibility 1-hop-C = %d, want 2", got)
	}
	// Move in A (extent 2, hop 1): traversed only = 1.
	d2 := tor.ID(torus.Coord{1, 0, 0, 0, 0})
	if got := Flexibility(tor, src, d2); got != 1 {
		t.Errorf("flexibility 1-hop-A = %d, want 1", got)
	}
}

func TestSelectZoneThresholds(t *testing.T) {
	tor := mira128()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 1, 0})
	if z := SelectZone(tor, src, dst, 512); z != ZoneFixedOrder {
		t.Errorf("512 B -> %v, want zone 3", z)
	}
	if z := SelectZone(tor, src, dst, 16<<10); z != ZoneDeterministic {
		t.Errorf("16 KB -> %v, want zone 2", z)
	}
	big := SelectZone(tor, src, dst, 1<<20)
	if big != ZoneLongestRandomTies && big != ZoneUnrestricted {
		t.Errorf("1 MB -> %v, want a dynamic zone", big)
	}
}

func TestDescribeRoute(t *testing.T) {
	tor := mira128()
	r := DeterministicRoute(tor, 0, tor.ID(torus.Coord{0, 0, 1, 0, 0}))
	s := DescribeRoute(tor, r)
	if s == "" {
		t.Fatal("empty description")
	}
}

// Property: every zone's route is minimal and valid for random pairs and
// random (feasible) shapes.
func TestPropertyZoneRoutesMinimal(t *testing.T) {
	f := func(shapeRaw [5]uint8, sRaw, dRaw uint16, zRaw uint8) bool {
		shape := make(torus.Shape, 5)
		for i, r := range shapeRaw {
			shape[i] = int(r%4) + 1
		}
		tor := torus.MustNew(shape)
		src := torus.NodeID(int(sRaw) % tor.Size())
		dst := torus.NodeID(int(dRaw) % tor.Size())
		router, err := NewRouter(tor, Zone(zRaw%4), 11)
		if err != nil {
			return false
		}
		r := router.Route(src, dst)
		if r.Hops() != tor.HopDistance(src, dst) {
			return false
		}
		// Walk it.
		cur := tor.Coord(src)
		for _, l := range r.Links {
			from, dim, dir := tor.LinkFrom(l)
			if from != tor.ID(cur) {
				return false
			}
			cur[dim] = tor.Wrap(dim, cur[dim]+int(dir))
		}
		return tor.ID(cur) == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: deterministic routes from a common source to distinct
// destinations reached by opposite first-dimension directions do not share
// their first link.
func TestPropertyOppositeDirectionsDisjointFirstHop(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	plus := tor.ID(torus.Coord{1, 0, 0, 0, 0})
	minus := tor.ID(torus.Coord{3, 0, 0, 0, 0})
	a := DeterministicRoute(tor, src, plus)
	b := DeterministicRoute(tor, src, minus)
	if SharesLink(a, b) {
		t.Fatal("+A and -A one-hop routes share a link")
	}
}

func BenchmarkDeterministicRoute(b *testing.B) {
	tor := torus.MustNew(torus.Shape{4, 4, 8, 16, 2})
	for i := 0; i < b.N; i++ {
		src := torus.NodeID(i % tor.Size())
		dst := torus.NodeID((i * 7) % tor.Size())
		_ = DeterministicRoute(tor, src, dst)
	}
}
