package storage

import (
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

func build(t *testing.T, shape torus.Shape, cfg Config) (*System, *netsim.Network, *ionet.System) {
	t.Helper()
	tor := torus.MustNew(shape)
	net := netsim.NewNetwork(tor, 1.8e9)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(net, ios, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, net, ios
}

func TestBuildRegistersLinks(t *testing.T) {
	s, net, ios := build(t, torus.Shape{4, 4, 4, 16, 2}, DefaultConfig())
	if s.NumServers() != 16 {
		t.Fatalf("NumServers = %d", s.NumServers())
	}
	for pi := 0; pi < ios.NumIONodes(); pi++ {
		l := s.IONIBLink(pi)
		if net.Capacity(l) != 4e9 {
			t.Fatalf("IB link %d capacity %g", l, net.Capacity(l))
		}
	}
	for sv := 0; sv < s.NumServers(); sv++ {
		if net.Capacity(s.ServerLink(sv)) != 2.5e9 {
			t.Fatal("server link capacity wrong")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	net := netsim.NewNetwork(tor, 1.8e9)
	ios, _ := ionet.Build(net, ionet.DefaultConfig())
	bad := DefaultConfig()
	bad.Servers = 0
	if _, err := Build(net, ios, bad); err == nil {
		t.Error("zero servers accepted")
	}
	bad = DefaultConfig()
	bad.StripeBytes = 0
	if _, err := Build(net, ios, bad); err == nil {
		t.Error("zero stripe accepted")
	}
	bad = DefaultConfig()
	bad.ServerBandwidth = -1
	if _, err := Build(net, ios, bad); err == nil {
		t.Error("negative bandwidth accepted")
	}
	bad = DefaultConfig()
	bad.ForwardDelay = -1
	if _, err := Build(net, ios, bad); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestServerForStripes(t *testing.T) {
	s, _, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	stripe := s.Config().StripeBytes
	if s.ServerFor(0) != 0 {
		t.Fatal("offset 0 should map to server 0")
	}
	if s.ServerFor(stripe) != 1 {
		t.Fatal("second stripe should map to server 1")
	}
	if s.ServerFor(stripe*int64(s.NumServers())) != 0 {
		t.Fatal("striping should wrap around")
	}
}

func TestSplitStripes(t *testing.T) {
	segs := splitStripes(10, 25, 16)
	// [10,16) [16,32) [32,35)
	want := []stripeSeg{{10, 6}, {16, 16}, {32, 3}}
	if len(segs) != len(want) {
		t.Fatalf("segments %v", segs)
	}
	var total int64
	for i, s := range segs {
		if s != want[i] {
			t.Fatalf("segments %v, want %v", segs, want)
		}
		total += s.bytes
	}
	if total != 25 {
		t.Fatalf("segments lose bytes: %d", total)
	}
}

func TestWriteFlowsShape(t *testing.T) {
	s, _, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	stripe := s.Config().StripeBytes
	fabric, conts := s.WriteFlows(0, 0, 0, stripe/2, stripe) // crosses one boundary
	if fabric.Bytes != stripe {
		t.Fatalf("fabric leg carries %d", fabric.Bytes)
	}
	if len(conts) != 2 {
		t.Fatalf("%d continuations, want 2", len(conts))
	}
	var sum int64
	for _, c := range conts {
		sum += c.Bytes
		if len(c.Links) != 2 {
			t.Fatalf("continuation has %d links, want IB + server", len(c.Links))
		}
	}
	if sum != stripe {
		t.Fatalf("continuations carry %d, want %d", sum, stripe)
	}
	// The two segments go to different servers.
	if conts[0].Links[1] == conts[1].Links[1] {
		t.Fatal("adjacent stripes landed on the same server")
	}
}

// Sink interface compliance.
var _ ionet.Sink = (*System)(nil)

// End-to-end: aggregation through the storage tier completes, delivers
// all bytes to servers, and is slower than the /dev/null sink when the
// servers are the bottleneck.
func TestAggregationThroughStorage(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Servers = 2 // few servers: the tier becomes the bottleneck
	st, err := Build(net, ios, cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, _ := mpisim.NewJob(tor, 16)
	data := workload.Pattern2(job.NumRanks(), 8<<20, 13)

	run := func(sink ionet.Sink) float64 {
		e, err := netsim.NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := core.NewAggPlanner(ios, job, p, core.DefaultAggConfig())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanWithSink(e, data, sink)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var arrived int64
		for _, id := range plan.Final {
			arrived += e.Result(id).Bytes
		}
		if arrived != plan.TotalBytes {
			t.Fatalf("arrived %d of %d", arrived, plan.TotalBytes)
		}
		return float64(plan.TotalBytes) / float64(mk)
	}

	devnull := run(ionet.DevNull{S: ios, ForwardDelay: p.ProxyForwardOverhead})
	gpfs := run(st)
	if gpfs >= devnull {
		t.Fatalf("storage-limited run (%.3g) should be slower than /dev/null (%.3g)", gpfs, devnull)
	}
	// The server tier caps at Servers * ServerBandwidth = 20 GB/s.
	cap := float64(cfg.Servers) * cfg.ServerBandwidth
	if gpfs > cap*1.01 {
		t.Fatalf("throughput %.3g exceeds server capacity %.3g", gpfs, cap)
	}
}
