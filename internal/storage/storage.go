// Package storage models the tier behind the I/O nodes in the paper's
// Figure 1: each ION uplinks into a QDR InfiniBand switch complex that
// fans out to GPFS file servers. A write that reaches an I/O node is
// forwarded over the ION's IB link and striped across the file servers
// in fixed-size blocks, each server ingesting at its own service rate.
//
// The paper's evaluation stops at the ION (/dev/null); this package is
// the natural extension a production deployment needs, and the harness
// uses it for the storage-tier extension experiment: with a real file
// system behind the IONs, the aggregation win shrinks exactly when the
// servers — not the torus or the 11th links — become the bottleneck.
package storage

import (
	"fmt"

	"bgqflow/internal/ionet"
	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Config sizes the storage tier.
type Config struct {
	// Servers is the number of GPFS file servers.
	Servers int
	// IONIBBandwidth is each I/O node's InfiniBand uplink rate
	// (QDR 4x: ~4 GB/s).
	IONIBBandwidth float64
	// ServerBandwidth is one file server's ingest rate.
	ServerBandwidth float64
	// StripeBytes is the GPFS block size writes are striped with.
	StripeBytes int64
	// ForwardDelay is the ION's I/O-forwarding turnaround per request.
	ForwardDelay sim.Duration
}

// DefaultConfig returns a Mira-era configuration scaled to the partition
// (the experiments override Servers to match the machine fraction).
func DefaultConfig() Config {
	return Config{
		Servers:         16,
		IONIBBandwidth:  4e9,
		ServerBandwidth: 2.5e9,
		StripeBytes:     8 << 20,
		ForwardDelay:    30e-6,
	}
}

// System is the built storage tier over an ionet.System.
type System struct {
	cfg     Config
	ios     *ionet.System
	ionIB   []int // per-ION IB link
	servers []int // per-server ingest link
}

// Build registers the IB and server links on the network.
func Build(net *netsim.Network, ios *ionet.System, cfg Config) (*System, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("storage: %d servers", cfg.Servers)
	}
	if cfg.IONIBBandwidth <= 0 || cfg.ServerBandwidth <= 0 {
		return nil, fmt.Errorf("storage: non-positive bandwidth")
	}
	if cfg.StripeBytes < 1 {
		return nil, fmt.Errorf("storage: stripe %d", cfg.StripeBytes)
	}
	if cfg.ForwardDelay < 0 {
		return nil, fmt.Errorf("storage: negative forward delay")
	}
	s := &System{cfg: cfg, ios: ios}
	for pi := 0; pi < ios.NumIONodes(); pi++ {
		s.ionIB = append(s.ionIB, net.AddLink(fmt.Sprintf("ion%d->ib", pi), cfg.IONIBBandwidth))
	}
	for sv := 0; sv < cfg.Servers; sv++ {
		s.servers = append(s.servers, net.AddLink(fmt.Sprintf("ib->fs%d", sv), cfg.ServerBandwidth))
	}
	return s, nil
}

// Config returns the tier's configuration.
func (s *System) Config() Config { return s.cfg }

// NumServers returns the file-server count.
func (s *System) NumServers() int { return len(s.servers) }

// ServerFor maps a file offset to the striped server index.
func (s *System) ServerFor(off int64) int {
	if off < 0 {
		panic(fmt.Sprintf("storage: negative offset %d", off))
	}
	return int((off / s.cfg.StripeBytes) % int64(len(s.servers)))
}

// ServerLink returns the ingest link of server sv.
func (s *System) ServerLink(sv int) int { return s.servers[sv] }

// IONIBLink returns the IB uplink of ION pi.
func (s *System) IONIBLink(pi int) int { return s.ionIB[pi] }

// WriteFlows implements ionet.Sink: the compute-fabric leg to the ION,
// then — store-and-forward at the ION — one IB+server continuation per
// stripe segment the byte range covers.
func (s *System) WriteFlows(n torus.NodeID, pi, bi int, off, bytes int64) (netsim.FlowSpec, []netsim.FlowSpec) {
	links, bridge := s.ios.WriteRouteVia(n, pi, bi)
	fabric := netsim.FlowSpec{
		Src: n, Dst: bridge, Bytes: bytes, Links: links,
		ExtraDelay: s.cfg.ForwardDelay,
	}
	var conts []netsim.FlowSpec
	for _, seg := range splitStripes(off, bytes, s.cfg.StripeBytes) {
		conts = append(conts, netsim.FlowSpec{
			Src: bridge, Dst: bridge, Bytes: seg.bytes,
			Links:      []int{s.ionIB[pi], s.servers[s.ServerFor(seg.off)]},
			ExtraDelay: s.cfg.ForwardDelay,
		})
	}
	return fabric, conts
}

type stripeSeg struct {
	off, bytes int64
}

// splitStripes cuts [off, off+bytes) at stripe boundaries.
func splitStripes(off, bytes, stripe int64) []stripeSeg {
	var out []stripeSeg
	for bytes > 0 {
		end := (off/stripe + 1) * stripe
		n := end - off
		if n > bytes {
			n = bytes
		}
		out = append(out, stripeSeg{off, n})
		off += n
		bytes -= n
	}
	return out
}
