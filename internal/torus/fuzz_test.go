package torus

import "testing"

// FuzzParseShape checks that arbitrary shape strings either error or
// produce a shape that round-trips through String and builds a torus.
func FuzzParseShape(f *testing.F) {
	for _, seed := range []string{"2x2x4x4x2", "4x4x4x16x2", "1", "8x8", "x", "0x1", "-1x2", "axb", "1x2x3x4x5x6x7x8", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		shape, err := ParseShape(s)
		if err != nil {
			return
		}
		if shape.Size() < 1 {
			t.Fatalf("parsed shape %v has size %d", shape, shape.Size())
		}
		tor, err := New(shape)
		if err != nil {
			t.Fatalf("parsed shape %v rejected by New: %v", shape, err)
		}
		// Round trip a coordinate.
		id := NodeID(tor.Size() - 1)
		if tor.ID(tor.Coord(id)) != id {
			t.Fatal("coordinate round trip failed")
		}
	})
}
