package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mira128() *Torus { return MustNew(Shape{2, 2, 4, 4, 2}) } // paper's 128-node partition

func TestNewValidation(t *testing.T) {
	if _, err := New(Shape{}); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := New(Shape{2, 0, 2}); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := New(Shape{1, 1, 1, 1, 1, 1, 1, 1, 1}); err == nil {
		t.Error("9-D shape accepted")
	}
	if _, err := New(Shape{4, 4, 4, 16, 2}); err != nil {
		t.Errorf("valid 2K-node shape rejected: %v", err)
	}
}

func TestSizeAndDims(t *testing.T) {
	tor := mira128()
	if tor.Size() != 128 {
		t.Errorf("Size() = %d, want 128", tor.Size())
	}
	if tor.Dims() != 5 {
		t.Errorf("Dims() = %d, want 5", tor.Dims())
	}
	if tor.NumTorusLinks() != 128*10 {
		t.Errorf("NumTorusLinks() = %d, want 1280 (10 links per node)", tor.NumTorusLinks())
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{2, 2, 4, 4, 2}).String(); got != "2x2x4x4x2" {
		t.Errorf("Shape.String() = %q", got)
	}
}

func TestParseShape(t *testing.T) {
	s, err := ParseShape("4x4x4x16x2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2048 {
		t.Errorf("parsed size = %d, want 2048", s.Size())
	}
	for _, bad := range []string{"", "4x-1x2", "axb", "1x2x3x4x5x6x7x8x9"} {
		if _, err := ParseShape(bad); err == nil {
			t.Errorf("ParseShape(%q) accepted", bad)
		}
	}
}

func TestIDCoordRoundTripExhaustive(t *testing.T) {
	tor := mira128()
	for id := NodeID(0); int(id) < tor.Size(); id++ {
		c := tor.Coord(id)
		if got := tor.ID(c); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestIDWrapsCoordinates(t *testing.T) {
	tor := mira128()
	a := tor.ID(Coord{0, 0, 0, 0, 0})
	b := tor.ID(Coord{2, 2, 4, 4, 2}) // each component wraps to 0
	if a != b {
		t.Errorf("wrapped coordinate maps to %d, want %d", b, a)
	}
	c := tor.ID(Coord{-1, -1, -1, -1, -1})
	want := tor.ID(Coord{1, 1, 3, 3, 1})
	if c != want {
		t.Errorf("negative coordinate maps to %d, want %d", c, want)
	}
}

func TestNeighborWraps(t *testing.T) {
	tor := mira128()
	origin := tor.ID(Coord{0, 0, 0, 0, 0})
	nb := tor.Neighbor(origin, 2, Minus)
	if got := tor.Coord(nb); !got.Equal(Coord{0, 0, 3, 0, 0}) {
		t.Errorf("Neighbor -C of origin = %v, want (0,0,3,0,0)", got)
	}
	nb2 := tor.Neighbor(nb, 2, Plus)
	if nb2 != origin {
		t.Errorf("+C then -C did not return to origin")
	}
}

func TestDisplacement(t *testing.T) {
	tor := MustNew(Shape{8})
	cases := []struct {
		a, b int
		hops int
		dir  Direction
	}{
		{0, 0, 0, Plus},
		{0, 3, 3, Plus},
		{0, 5, 3, Minus},
		{0, 4, 4, Plus}, // tie: positive direction chosen
		{6, 1, 3, Plus}, // wraps forward
		{1, 6, 3, Minus},
	}
	for _, c := range cases {
		h, d := tor.Displacement(0, c.a, c.b)
		if h != c.hops || d != c.dir {
			t.Errorf("Displacement(%d->%d) = (%d,%v), want (%d,%v)", c.a, c.b, h, d, c.hops, c.dir)
		}
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	tor := mira128()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := NodeID(rng.Intn(tor.Size()))
		b := NodeID(rng.Intn(tor.Size()))
		if tor.HopDistance(a, b) != tor.HopDistance(b, a) {
			t.Fatalf("HopDistance(%d,%d) asymmetric", a, b)
		}
	}
}

func TestHopDistanceCornerToCorner(t *testing.T) {
	tor := mira128()
	first := NodeID(0)
	last := NodeID(tor.Size() - 1)
	// (0,0,0,0,0) -> (1,1,3,3,1): ring distances 1+1+1+1+1 = 5
	// (extent-4 dims have min distance 1 from 0 to 3 going minus).
	if got := tor.HopDistance(first, last); got != 5 {
		t.Errorf("corner-to-corner hops = %d, want 5", got)
	}
}

func TestLinkIDRoundTrip(t *testing.T) {
	tor := mira128()
	seen := make(map[int]bool)
	for id := NodeID(0); int(id) < tor.Size(); id++ {
		for dim := 0; dim < tor.Dims(); dim++ {
			for _, dir := range []Direction{Plus, Minus} {
				l := tor.LinkID(id, dim, dir)
				if l < 0 || l >= tor.NumTorusLinks() {
					t.Fatalf("link ID %d outside range", l)
				}
				if seen[l] {
					t.Fatalf("duplicate link ID %d", l)
				}
				seen[l] = true
				f, dm, dr := tor.LinkFrom(l)
				if f != id || dm != dim || dr != dir {
					t.Fatalf("LinkFrom(LinkID(%d,%d,%v)) = (%d,%d,%v)", id, dim, dir, f, dm, dr)
				}
			}
		}
	}
	if len(seen) != tor.NumTorusLinks() {
		t.Fatalf("enumerated %d links, want %d", len(seen), tor.NumTorusLinks())
	}
}

func TestDimsByExtentDesc(t *testing.T) {
	tor := MustNew(Shape{4, 4, 4, 16, 2})
	got := tor.DimsByExtentDesc()
	want := []int{3, 0, 1, 2, 4} // D(16) first, then A,B,C (ties ascending), E(2) last
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DimsByExtentDesc() = %v, want %v", got, want)
		}
	}
}

func TestDimsByExtentDescAllEqual(t *testing.T) {
	tor := MustNew(Shape{4, 4, 4})
	got := tor.DimsByExtentDesc()
	for i, d := range []int{0, 1, 2} {
		if got[i] != d {
			t.Fatalf("ties must keep ascending dim order, got %v", got)
		}
	}
}

// Property: ID/Coord are inverse bijections for random shapes.
func TestPropertyIDCoordInverse(t *testing.T) {
	f := func(raw [5]uint8, pick uint16) bool {
		shape := make(Shape, 5)
		for i, r := range raw {
			shape[i] = int(r%4) + 1
		}
		tor := MustNew(shape)
		id := NodeID(int(pick) % tor.Size())
		return tor.ID(tor.Coord(id)) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Displacement returns the minimal ring distance, and following
// it lands on the target.
func TestPropertyDisplacementMinimal(t *testing.T) {
	f := func(extRaw uint8, aRaw, bRaw uint16) bool {
		ext := int(extRaw%15) + 1
		tor := MustNew(Shape{ext})
		a, b := int(aRaw)%ext, int(bRaw)%ext
		hops, dir := tor.Displacement(0, a, b)
		if hops < 0 || hops > ext/2 {
			return false
		}
		pos := a
		for i := 0; i < hops; i++ {
			pos = tor.Wrap(0, pos+int(dir))
		}
		return pos == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for hop distance.
func TestPropertyHopDistanceTriangle(t *testing.T) {
	tor := MustNew(Shape{4, 4, 4, 16, 2})
	f := func(ar, br, cr uint16) bool {
		a := NodeID(int(ar) % tor.Size())
		b := NodeID(int(br) % tor.Size())
		c := NodeID(int(cr) % tor.Size())
		return tor.HopDistance(a, c) <= tor.HopDistance(a, b)+tor.HopDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCoordRoundTrip(b *testing.B) {
	tor := MustNew(Shape{4, 4, 8, 16, 2})
	c := make(Coord, 5)
	for i := 0; i < b.N; i++ {
		id := NodeID(i % tor.Size())
		tor.CoordInto(id, c)
		_ = tor.ID(c)
	}
}
