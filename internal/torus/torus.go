// Package torus models k-dimensional torus interconnect topologies, in
// particular the 5-D torus of the IBM Blue Gene/Q. It provides coordinate
// arithmetic, node and directed-link identifiers, minimal-hop ring
// displacement, and rectangular sub-boxes (used for psets and for the 5-D
// block decomposition in the aggregator-placement algorithm).
//
// On the BG/Q the machine is partitioned into non-overlapping rectangular
// submachines, each wired as a torus of its own shape; a Torus value models
// one such partition (dimensions conventionally named A, B, C, D, E).
package torus

import (
	"fmt"
	"strings"
)

// MaxDims is the largest dimensionality supported. The BG/Q torus is 5-D;
// the package works for any dimensionality from 1 to MaxDims.
const MaxDims = 8

// DimNames holds the conventional BG/Q dimension letters.
var DimNames = [MaxDims]string{"A", "B", "C", "D", "E", "F", "G", "H"}

// Shape is the per-dimension extent of a torus, e.g. {2, 2, 4, 4, 2}.
type Shape []int

// Size returns the number of nodes in a torus of this shape.
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape in BG/Q style, e.g. "2x2x4x4x2".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

// ParseShape parses a BG/Q style shape string such as "2x2x4x4x2".
func ParseShape(str string) (Shape, error) {
	parts := strings.Split(str, "x")
	if len(parts) == 0 || len(parts) > MaxDims {
		return nil, fmt.Errorf("torus: shape %q must have 1..%d dimensions", str, MaxDims)
	}
	s := make(Shape, len(parts))
	for i, p := range parts {
		var d int
		if _, err := fmt.Sscanf(p, "%d", &d); err != nil || d < 1 {
			return nil, fmt.Errorf("torus: bad extent %q in shape %q", p, str)
		}
		s[i] = d
	}
	return s, nil
}

// Coord is a node coordinate; len(Coord) equals the torus dimensionality.
type Coord []int

// Clone returns an independent copy of the coordinate.
func (c Coord) Clone() Coord {
	o := make(Coord, len(c))
	copy(o, c)
	return o
}

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the coordinate as "(a,b,c,d,e)".
func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// NodeID is a node's linear index within its torus, in row-major order
// (dimension 0 varies slowest).
type NodeID int

// Direction is a hop direction along one dimension: +1 or -1.
type Direction int

const (
	Plus  Direction = +1
	Minus Direction = -1
)

// String renders the direction as "+" or "-".
func (d Direction) String() string {
	if d >= 0 {
		return "+"
	}
	return "-"
}

// Torus is an immutable k-dimensional torus.
type Torus struct {
	shape   Shape
	strides []int
	size    int
}

// New constructs a torus of the given shape. Every extent must be >= 1.
func New(shape Shape) (*Torus, error) {
	if len(shape) < 1 || len(shape) > MaxDims {
		return nil, fmt.Errorf("torus: dimensionality %d outside 1..%d", len(shape), MaxDims)
	}
	for i, d := range shape {
		if d < 1 {
			return nil, fmt.Errorf("torus: extent of dimension %s is %d, must be >= 1", DimNames[i], d)
		}
	}
	t := &Torus{shape: shape.Clone(), strides: make([]int, len(shape))}
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= shape[i]
	}
	t.size = stride
	return t, nil
}

// MustNew is New but panics on error; for tests and fixed literals.
func MustNew(shape Shape) *Torus {
	t, err := New(shape)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the torus shape.
func (t *Torus) Shape() Shape { return t.shape.Clone() }

// Dims returns the dimensionality.
func (t *Torus) Dims() int { return len(t.shape) }

// Extent returns the length of dimension dim.
func (t *Torus) Extent(dim int) int { return t.shape[dim] }

// Size returns the number of nodes.
func (t *Torus) Size() int { return t.size }

// ID converts a coordinate to its linear node ID. Coordinates are wrapped
// into range, so ID is total on all integer coordinates.
func (t *Torus) ID(c Coord) NodeID {
	if len(c) != len(t.shape) {
		panic(fmt.Sprintf("torus: coordinate %v has %d dims, torus has %d", c, len(c), len(t.shape)))
	}
	id := 0
	for i, v := range c {
		id += t.Wrap(i, v) * t.strides[i]
	}
	return NodeID(id)
}

// Coord converts a node ID to its coordinate, allocating the result.
func (t *Torus) Coord(id NodeID) Coord {
	c := make(Coord, len(t.shape))
	t.CoordInto(id, c)
	return c
}

// CoordInto converts a node ID into a caller-provided coordinate buffer.
func (t *Torus) CoordInto(id NodeID, c Coord) {
	if id < 0 || int(id) >= t.size {
		panic(fmt.Sprintf("torus: node ID %d outside [0,%d)", id, t.size))
	}
	rem := int(id)
	for i := range t.shape {
		c[i] = rem / t.strides[i]
		rem %= t.strides[i]
	}
}

// Wrap reduces coordinate value v into [0, extent) for dimension dim.
func (t *Torus) Wrap(dim, v int) int {
	d := t.shape[dim]
	v %= d
	if v < 0 {
		v += d
	}
	return v
}

// Neighbor returns the node one hop from id in the given dimension and
// direction, with wraparound.
func (t *Torus) Neighbor(id NodeID, dim int, dir Direction) NodeID {
	c := t.Coord(id)
	c[dim] = t.Wrap(dim, c[dim]+int(dir))
	return t.ID(c)
}

// Displacement returns the minimal-hop signed displacement from a to b
// along dimension dim on the ring: the hop count and travel direction.
// When both ways around the ring are equally long, the positive direction
// is chosen, making routing deterministic. A zero displacement reports
// (0, Plus).
func (t *Torus) Displacement(dim, a, b int) (hops int, dir Direction) {
	d := t.shape[dim]
	fwd := ((b-a)%d + d) % d // hops going +
	if fwd == 0 {
		return 0, Plus
	}
	bwd := d - fwd // hops going -
	if fwd <= bwd {
		return fwd, Plus
	}
	return bwd, Minus
}

// HopDistance returns the total minimal hop count between two nodes
// (the sum over dimensions of minimal ring distances).
func (t *Torus) HopDistance(a, b NodeID) int {
	ca, cb := t.Coord(a), t.Coord(b)
	total := 0
	for i := range ca {
		h, _ := t.Displacement(i, ca[i], cb[i])
		total += h
	}
	return total
}

// NumTorusLinks returns the number of directed torus links: each node has
// one outgoing link per dimension per direction (2 * dims), matching the
// BG/Q's 10 send units per node for a 5-D torus.
func (t *Torus) NumTorusLinks() int { return t.size * 2 * len(t.shape) }

// LinkID identifies the directed link leaving node `from` along dimension
// dim in direction dir. IDs are dense in [0, NumTorusLinks()).
func (t *Torus) LinkID(from NodeID, dim int, dir Direction) int {
	d := 0
	if dir == Minus {
		d = 1
	}
	return (int(from)*len(t.shape)+dim)*2 + d
}

// LinkFrom decodes a link ID back into (from, dim, dir).
func (t *Torus) LinkFrom(link int) (from NodeID, dim int, dir Direction) {
	d := link & 1
	rest := link >> 1
	dim = rest % len(t.shape)
	from = NodeID(rest / len(t.shape))
	dir = Plus
	if d == 1 {
		dir = Minus
	}
	return from, dim, dir
}

// LinkString renders a link for diagnostics, e.g. "(0,0,1,3,0) -B->".
func (t *Torus) LinkString(link int) string {
	from, dim, dir := t.LinkFrom(link)
	return fmt.Sprintf("%v %s%s->", t.Coord(from), dir, DimNames[dim])
}

// DimsByExtentDesc returns the dimension indices ordered longest extent
// first; ties keep ascending dimension index (a stable, deterministic
// ordering). This is the BG/Q "longest to shortest" dimension routing
// order used by the default deterministic routing algorithm.
func (t *Torus) DimsByExtentDesc() []int {
	order := make([]int, len(t.shape))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: dims is tiny (<= MaxDims).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if t.shape[b] > t.shape[a] || (t.shape[b] == t.shape[a] && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}
