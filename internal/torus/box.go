package torus

import (
	"fmt"
	"sort"
)

// Box is a rectangular region of a torus: an origin corner plus an extent
// in each dimension. Boxes model psets (the 128-node I/O groupings of the
// BG/Q), application sub-partitions (the contiguous regions hosting each
// physics module of a coupled multiphysics code), and the equal 5-D blocks
// the aggregator-placement algorithm carves a pset into.
//
// A box never wraps: Origin[i] + Extent[i] <= torus extent must hold for
// the boxes this package constructs, and NewBox enforces it. That matches
// the paper's assumption that communicating regions are contiguous.
type Box struct {
	Origin Coord
	Extent Shape
}

// NewBox validates and returns a box within t.
func NewBox(t *Torus, origin Coord, extent Shape) (Box, error) {
	if len(origin) != t.Dims() || len(extent) != t.Dims() {
		return Box{}, fmt.Errorf("torus: box origin/extent dims (%d/%d) do not match torus dims %d",
			len(origin), len(extent), t.Dims())
	}
	for i := range origin {
		if origin[i] < 0 || origin[i] >= t.Extent(i) {
			return Box{}, fmt.Errorf("torus: box origin %v outside torus %v", origin, t.Shape())
		}
		if extent[i] < 1 || origin[i]+extent[i] > t.Extent(i) {
			return Box{}, fmt.Errorf("torus: box extent %v at origin %v exceeds torus %v in dimension %s",
				extent, origin, t.Shape(), DimNames[i])
		}
	}
	return Box{Origin: origin.Clone(), Extent: extent.Clone()}, nil
}

// MustNewBox is NewBox but panics on error.
func MustNewBox(t *Torus, origin Coord, extent Shape) Box {
	b, err := NewBox(t, origin, extent)
	if err != nil {
		panic(err)
	}
	return b
}

// WholeBox returns the box covering all of t.
func WholeBox(t *Torus) Box {
	return Box{Origin: make(Coord, t.Dims()), Extent: t.Shape()}
}

// Size returns the number of nodes in the box.
func (b Box) Size() int { return b.Extent.Size() }

// Contains reports whether coordinate c lies within the box.
func (b Box) Contains(c Coord) bool {
	if len(c) != len(b.Origin) {
		return false
	}
	for i := range c {
		if c[i] < b.Origin[i] || c[i] >= b.Origin[i]+b.Extent[i] {
			return false
		}
	}
	return true
}

// Corner returns the box's origin corner coordinate (a copy).
func (b Box) Corner() Coord { return b.Origin.Clone() }

// OppositeCorner returns the coordinate of the corner diagonally opposite
// the origin.
func (b Box) OppositeCorner() Coord {
	c := make(Coord, len(b.Origin))
	for i := range c {
		c[i] = b.Origin[i] + b.Extent[i] - 1
	}
	return c
}

// Nodes returns the IDs of every node in the box, in row-major order of
// the box-local coordinates. The result is freshly allocated.
func (b Box) Nodes(t *Torus) []NodeID {
	ids := make([]NodeID, 0, b.Size())
	c := b.Origin.Clone()
	for {
		ids = append(ids, t.ID(c))
		// Increment box-local odometer, last dimension fastest.
		i := len(c) - 1
		for ; i >= 0; i-- {
			c[i]++
			if c[i] < b.Origin[i]+b.Extent[i] {
				break
			}
			c[i] = b.Origin[i]
		}
		if i < 0 {
			return ids
		}
	}
}

// String renders the box as "origin+extent", e.g. "(0,0,0,0,0)+2x2x4x4x2".
func (b Box) String() string {
	return fmt.Sprintf("%v+%v", b.Origin, b.Extent)
}

// SplitFactors factors parts into per-dimension divisors f with
// f[0]*f[1]*...*f[L-1] == parts and f[i] dividing extent[i], preferring to
// split the longest dimensions first (which yields the most cubic blocks).
// It returns an error when no such factorization exists. This implements
// the "divide the pset along 5 dimensions by factors na*nb*nc*nd*ne =
// num_agg" step of the paper's Algorithm 2.
func SplitFactors(extent Shape, parts int) ([]int, error) {
	if parts < 1 {
		return nil, fmt.Errorf("torus: parts %d must be >= 1", parts)
	}
	if parts > extent.Size() {
		return nil, fmt.Errorf("torus: cannot split %v (%d nodes) into %d parts", extent, extent.Size(), parts)
	}
	f := make([]int, len(extent))
	remaining := make([]int, len(extent))
	for i := range f {
		f[i] = 1
		remaining[i] = extent[i]
	}
	p := parts
	for p > 1 {
		prime := smallestPrimeFactor(p)
		// Pick the dimension with the largest remaining extent divisible
		// by this prime; ties favor the lowest index for determinism.
		best := -1
		for i := range remaining {
			if remaining[i]%prime != 0 {
				continue
			}
			if best < 0 || remaining[i] > remaining[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("torus: %v has no block decomposition into %d parts (prime %d does not divide any remaining extent)",
				extent, parts, prime)
		}
		f[best] *= prime
		remaining[best] /= prime
		p /= prime
	}
	return f, nil
}

func smallestPrimeFactor(n int) int {
	if n%2 == 0 {
		return 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return d
		}
	}
	return n
}

// Blocks carves the box into parts equal sub-boxes using SplitFactors.
// The blocks are returned in row-major order of their block coordinates
// and tile the box exactly (disjoint, covering).
func (b Box) Blocks(parts int) ([]Box, error) {
	f, err := SplitFactors(b.Extent, parts)
	if err != nil {
		return nil, err
	}
	blockExtent := make(Shape, len(b.Extent))
	for i := range f {
		blockExtent[i] = b.Extent[i] / f[i]
	}
	out := make([]Box, 0, parts)
	idx := make([]int, len(f))
	for {
		origin := make(Coord, len(b.Origin))
		for i := range origin {
			origin[i] = b.Origin[i] + idx[i]*blockExtent[i]
		}
		out = append(out, Box{Origin: origin, Extent: blockExtent.Clone()})
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < f[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// FeasibleBlockCounts returns, in ascending order, every parts value in
// [1, max] for which the box has an exact block decomposition. The
// aggregator-placement algorithm precomputes candidate aggregator sets for
// each of these counts (the paper's list P = {1, 2, 4, ..., 128}).
func (b Box) FeasibleBlockCounts(max int) []int {
	var out []int
	for p := 1; p <= max && p <= b.Size(); p++ {
		if _, err := SplitFactors(b.Extent, p); err == nil {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
