package torus_test

import (
	"fmt"

	"bgqflow/internal/torus"
)

func ExampleNew() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	fmt.Println(tor.Shape(), tor.Size(), "nodes,", tor.NumTorusLinks(), "directed links")
	// Output: 2x2x4x4x2 128 nodes, 1280 directed links
}

func ExampleTorus_Displacement() {
	tor := torus.MustNew(torus.Shape{16})
	hops, dir := tor.Displacement(0, 2, 14)
	fmt.Printf("2 -> 14 on a 16-ring: %d hops going %v\n", hops, dir)
	// Output: 2 -> 14 on a 16-ring: 4 hops going -
}

func ExampleBox_Blocks() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	blocks, _ := torus.WholeBox(tor).Blocks(4)
	fmt.Println(len(blocks), "blocks of", blocks[0].Size(), "nodes")
	// Output: 4 blocks of 32 nodes
}
