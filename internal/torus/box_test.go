package torus

import (
	"testing"
	"testing/quick"
)

func TestNewBoxValidation(t *testing.T) {
	tor := mira128()
	if _, err := NewBox(tor, Coord{0, 0, 0, 0, 0}, Shape{2, 2, 4, 4, 2}); err != nil {
		t.Errorf("whole-torus box rejected: %v", err)
	}
	if _, err := NewBox(tor, Coord{1, 0, 0, 0, 0}, Shape{2, 1, 1, 1, 1}); err == nil {
		t.Error("box exceeding extent accepted")
	}
	if _, err := NewBox(tor, Coord{0, 0, 0, 0, 0}, Shape{0, 1, 1, 1, 1}); err == nil {
		t.Error("zero-extent box accepted")
	}
	if _, err := NewBox(tor, Coord{0, 0}, Shape{1, 1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewBox(tor, Coord{-1, 0, 0, 0, 0}, Shape{1, 1, 1, 1, 1}); err == nil {
		t.Error("negative origin accepted")
	}
}

func TestBoxNodesCountAndMembership(t *testing.T) {
	tor := mira128()
	b := MustNewBox(tor, Coord{0, 0, 1, 1, 0}, Shape{2, 1, 2, 3, 1})
	nodes := b.Nodes(tor)
	if len(nodes) != b.Size() {
		t.Fatalf("Nodes returned %d, want %d", len(nodes), b.Size())
	}
	seen := make(map[NodeID]bool)
	for _, id := range nodes {
		if seen[id] {
			t.Fatalf("duplicate node %d", id)
		}
		seen[id] = true
		if !b.Contains(tor.Coord(id)) {
			t.Fatalf("node %d %v outside box %v", id, tor.Coord(id), b)
		}
	}
	// And everything outside really is outside.
	inCount := 0
	for id := NodeID(0); int(id) < tor.Size(); id++ {
		if b.Contains(tor.Coord(id)) {
			inCount++
		}
	}
	if inCount != b.Size() {
		t.Fatalf("Contains admits %d nodes, want %d", inCount, b.Size())
	}
}

func TestBoxCorners(t *testing.T) {
	tor := mira128()
	b := MustNewBox(tor, Coord{0, 1, 1, 0, 0}, Shape{2, 1, 3, 4, 2})
	if got := b.Corner(); !got.Equal(Coord{0, 1, 1, 0, 0}) {
		t.Errorf("Corner() = %v", got)
	}
	if got := b.OppositeCorner(); !got.Equal(Coord{1, 1, 3, 3, 1}) {
		t.Errorf("OppositeCorner() = %v", got)
	}
}

func TestSplitFactorsBasics(t *testing.T) {
	f, err := SplitFactors(Shape{2, 2, 4, 4, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	shape := Shape{2, 2, 4, 4, 2}
	prod := 1
	for i, v := range f {
		prod *= v
		if shape[i]%v != 0 {
			t.Errorf("factor %d does not divide extent in dim %d", v, i)
		}
	}
	if prod != 8 {
		t.Errorf("factors %v multiply to %d, want 8", f, prod)
	}
}

func TestSplitFactorsPrefersLongDims(t *testing.T) {
	f, err := SplitFactors(Shape{2, 2, 4, 4, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The single factor of 2 should land on a longest (extent-4) dim.
	shape := Shape{2, 2, 4, 4, 2}
	for i, v := range f {
		if v == 2 && shape[i] != 4 {
			t.Errorf("factor placed on dim %d (extent %d), want an extent-4 dim", i, shape[i])
		}
	}
}

func TestSplitFactorsInfeasible(t *testing.T) {
	if _, err := SplitFactors(Shape{2, 2, 2}, 3); err == nil {
		t.Error("3-way split of 2x2x2 accepted")
	}
	if _, err := SplitFactors(Shape{2, 2}, 8); err == nil {
		t.Error("8-way split of 2x2 accepted")
	}
	if _, err := SplitFactors(Shape{2, 2}, 0); err == nil {
		t.Error("0-way split accepted")
	}
}

func TestBlocksTileExactly(t *testing.T) {
	tor := mira128()
	pset := WholeBox(tor)
	for _, parts := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		blocks, err := pset.Blocks(parts)
		if err != nil {
			t.Fatalf("Blocks(%d): %v", parts, err)
		}
		if len(blocks) != parts {
			t.Fatalf("Blocks(%d) returned %d blocks", parts, len(blocks))
		}
		seen := make(map[NodeID]int)
		for _, blk := range blocks {
			for _, id := range blk.Nodes(tor) {
				seen[id]++
			}
		}
		if len(seen) != tor.Size() {
			t.Fatalf("Blocks(%d) cover %d nodes, want %d", parts, len(seen), tor.Size())
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("Blocks(%d): node %d covered %d times", parts, id, n)
			}
		}
	}
}

func TestFeasibleBlockCounts(t *testing.T) {
	tor := mira128()
	counts := Box.FeasibleBlockCounts(WholeBox(tor), 128)
	// 2x2x4x4x2 = 2^7, so feasible counts are exactly the powers of two <= 128.
	want := []int{1, 2, 4, 8, 16, 32, 64, 128}
	if len(counts) != len(want) {
		t.Fatalf("FeasibleBlockCounts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("FeasibleBlockCounts = %v, want %v", counts, want)
		}
	}
}

// Property: any feasible block decomposition tiles the box exactly.
func TestPropertyBlocksPartition(t *testing.T) {
	tor := MustNew(Shape{4, 4, 4, 16, 2})
	whole := WholeBox(tor)
	f := func(pRaw uint8) bool {
		parts := int(pRaw)%64 + 1
		blocks, err := whole.Blocks(parts)
		if err != nil {
			return true // infeasible counts are allowed to error
		}
		total := 0
		for _, b := range blocks {
			total += b.Size()
		}
		return total == tor.Size() && len(blocks) == parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
