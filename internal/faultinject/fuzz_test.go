package faultinject

import (
	"testing"

	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// FuzzFaultCampaign drives the seeded generators with arbitrary seeds and
// sizes and checks the structural invariants the rest of the system leans
// on: campaigns never schedule the same link or node twice, never name an
// out-of-range link, and always validate against their own torus.
func FuzzFaultCampaign(f *testing.F) {
	f.Add(int64(1), uint8(4), false)
	f.Add(int64(42), uint8(16), true)
	f.Add(int64(-9), uint8(0), false)
	f.Add(int64(1<<40), uint8(255), true)
	f.Fuzz(func(t *testing.T, seed int64, rawN uint8, burst bool) {
		tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
		n := int(rawN) % (tor.NumTorusLinks() + 1)
		var c *Campaign
		if burst {
			c = BurstLinks(tor, seed, n, 0.05)
		} else {
			c = UniformLinks(tor, seed, n, sim.Time(0.1))
		}
		if len(c.Events) != n {
			t.Fatalf("campaign has %d events, want %d", len(c.Events), n)
		}
		if err := c.Validate(tor.NumTorusLinks(), tor.Size()); err != nil {
			t.Fatalf("generated campaign invalid: %v", err)
		}
		m := MTBFLinks(tor, seed, 0.02, 0.1)
		if err := m.Validate(tor.NumTorusLinks(), tor.Size()); err != nil {
			t.Fatalf("mtbf campaign invalid: %v", err)
		}
		seen := make(map[int]struct{})
		for _, ev := range c.Events {
			if ev.Link < 0 || ev.Link >= tor.NumTorusLinks() {
				t.Fatalf("out-of-range link %d", ev.Link)
			}
			if _, dup := seen[ev.Link]; dup {
				t.Fatalf("duplicate link %d", ev.Link)
			}
			seen[ev.Link] = struct{}{}
		}
	})
}
