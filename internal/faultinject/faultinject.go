// Package faultinject builds deterministic, seeded fault campaigns —
// time-scheduled link and node failures — and applies them to a netsim
// engine. A campaign is a plain list of events, so scenarios and
// experiments can construct one from a seed (uniform, MTBF-style, burst,
// or targeted generators below), validate it against a network, and
// schedule it with Apply; the same seed always yields the same campaign.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Event is one scheduled failure: a single link, or a whole node (all of
// its torus links plus registered extra links).
type Event struct {
	At     sim.Time
	Link   int // valid when !IsNode
	Node   torus.NodeID
	IsNode bool
}

// Campaign is a deterministic set of failure events. Events are kept
// sorted by time; ties break by insertion order.
type Campaign struct {
	Name   string
	Seed   int64
	Events []Event
}

// Validate checks a campaign against a network: every link in range and
// not an obvious duplicate, every node in range, every time nonnegative.
// Campaign generators always produce valid campaigns; Validate guards
// hand-built and deserialized ones.
func (c *Campaign) Validate(numLinks, numNodes int) error {
	links := make(map[int]struct{}, len(c.Events))
	nodes := make(map[torus.NodeID]struct{}, len(c.Events))
	for i, ev := range c.Events {
		if ev.At < 0 || math.IsNaN(float64(ev.At)) || math.IsInf(float64(ev.At), 0) {
			return fmt.Errorf("faultinject: campaign %q event %d at invalid time %g", c.Name, i, float64(ev.At))
		}
		if ev.IsNode {
			if ev.Node < 0 || int(ev.Node) >= numNodes {
				return fmt.Errorf("faultinject: campaign %q event %d fails out-of-range node %d", c.Name, i, ev.Node)
			}
			if _, dup := nodes[ev.Node]; dup {
				return fmt.Errorf("faultinject: campaign %q schedules node %d twice", c.Name, ev.Node)
			}
			nodes[ev.Node] = struct{}{}
			continue
		}
		if ev.Link < 0 || ev.Link >= numLinks {
			return fmt.Errorf("faultinject: campaign %q event %d fails out-of-range link %d", c.Name, i, ev.Link)
		}
		if _, dup := links[ev.Link]; dup {
			return fmt.Errorf("faultinject: campaign %q schedules link %d twice", c.Name, ev.Link)
		}
		links[ev.Link] = struct{}{}
	}
	return nil
}

// Apply validates the campaign against the engine's network and schedules
// every event on its clock.
func (c *Campaign) Apply(e *netsim.Engine) error {
	net := e.Network()
	if err := c.Validate(net.NumLinks(), net.NumNodes()); err != nil {
		return err
	}
	for _, ev := range c.Events {
		if ev.IsNode {
			e.FailNodeAt(ev.Node, ev.At)
		} else {
			e.FailLinkAt(ev.Link, ev.At)
		}
	}
	return nil
}

// Links returns the distinct link IDs the campaign fails directly (node
// events not expanded).
func (c *Campaign) Links() []int {
	out := make([]int, 0, len(c.Events))
	for _, ev := range c.Events {
		if !ev.IsNode {
			out = append(out, ev.Link)
		}
	}
	return out
}

func (c *Campaign) sortByTime() {
	sort.SliceStable(c.Events, func(i, j int) bool { return c.Events[i].At < c.Events[j].At })
}

// pickDistinct draws n distinct values in [0, limit) from rng. It panics
// if n > limit; campaign constructors bound n first.
func pickDistinct(rng *rand.Rand, n, limit int) []int {
	if n > limit {
		panic(fmt.Sprintf("faultinject: want %d distinct of %d", n, limit))
	}
	seen := make(map[int]struct{}, n)
	out := make([]int, 0, n)
	for len(out) < n {
		v := rng.Intn(limit)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// UniformLinks builds a campaign of n distinct torus-link failures with
// times drawn uniformly over (0, window].
func UniformLinks(tor *torus.Torus, seed int64, n int, window sim.Time) *Campaign {
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{Name: fmt.Sprintf("uniform-%d", n), Seed: seed}
	for _, l := range pickDistinct(rng, n, tor.NumTorusLinks()) {
		at := sim.Time(rng.Float64()) * window
		c.Events = append(c.Events, Event{At: at, Link: l})
	}
	c.sortByTime()
	return c
}

// MTBFLinks builds a campaign whose failures arrive as a Poisson process
// with the given mean time between failures, truncated at horizon. Each
// arrival fails a fresh distinct torus link; the campaign holds however
// many arrivals fit in the horizon (possibly zero).
func MTBFLinks(tor *torus.Torus, seed int64, mtbf, horizon sim.Time) *Campaign {
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{Name: "mtbf", Seed: seed}
	seen := make(map[int]struct{})
	at := sim.Time(0)
	for {
		at += sim.Time(rng.ExpFloat64()) * mtbf
		if at > horizon || len(seen) >= tor.NumTorusLinks() {
			break
		}
		var l int
		for {
			l = rng.Intn(tor.NumTorusLinks())
			if _, dup := seen[l]; !dup {
				break
			}
		}
		seen[l] = struct{}{}
		c.Events = append(c.Events, Event{At: at, Link: l})
	}
	return c
}

// BurstLinks fails n distinct torus links at one shared instant — the
// correlated-failure case (e.g. a midplane power event).
func BurstLinks(tor *torus.Torus, seed int64, n int, at sim.Time) *Campaign {
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{Name: fmt.Sprintf("burst-%d", n), Seed: seed}
	for _, l := range pickDistinct(rng, n, tor.NumTorusLinks()) {
		c.Events = append(c.Events, Event{At: at, Link: l})
	}
	return c
}

// TargetedLinks fails n distinct links drawn from an explicit pool, with
// times uniform over (0, window]. The campaign always includes pool[0]:
// R1 passes a pool headed by a direct-route link, guaranteeing the direct
// path takes a failure in every nonempty campaign. It panics if the pool
// (deduplicated) holds fewer than n links.
func TargetedLinks(seed int64, pool []int, n int, window sim.Time) *Campaign {
	uniq := make([]int, 0, len(pool))
	seen := make(map[int]struct{}, len(pool))
	for _, l := range pool {
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			uniq = append(uniq, l)
		}
	}
	if n > len(uniq) {
		panic(fmt.Sprintf("faultinject: targeted campaign wants %d links from a pool of %d", n, len(uniq)))
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{Name: fmt.Sprintf("targeted-%d", n), Seed: seed}
	if n > 0 {
		c.Events = append(c.Events, Event{At: sim.Time(rng.Float64()) * window, Link: uniq[0]})
		for _, idx := range pickDistinct(rng, n-1, len(uniq)-1) {
			at := sim.Time(rng.Float64()) * window
			c.Events = append(c.Events, Event{At: at, Link: uniq[idx+1]})
		}
	}
	c.sortByTime()
	return c
}

// Nodes fails n distinct nodes from the candidate list (e.g. a system's
// bridge nodes for bridge/ION campaigns), times uniform over (0, window].
func Nodes(seed int64, candidates []torus.NodeID, n int, window sim.Time) *Campaign {
	if n > len(candidates) {
		panic(fmt.Sprintf("faultinject: node campaign wants %d of %d candidates", n, len(candidates)))
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{Name: fmt.Sprintf("nodes-%d", n), Seed: seed}
	for _, idx := range pickDistinct(rng, n, len(candidates)) {
		at := sim.Time(rng.Float64()) * window
		c.Events = append(c.Events, Event{At: at, Node: candidates[idx], IsNode: true})
	}
	c.sortByTime()
	return c
}
