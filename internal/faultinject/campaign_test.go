package faultinject

import (
	"reflect"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

func testTorus(t *testing.T) *torus.Torus {
	t.Helper()
	return torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	tor := testTorus(t)
	build := map[string]func(seed int64) *Campaign{
		"uniform": func(s int64) *Campaign { return UniformLinks(tor, s, 8, 0.1) },
		"mtbf":    func(s int64) *Campaign { return MTBFLinks(tor, s, 0.01, 0.1) },
		"burst":   func(s int64) *Campaign { return BurstLinks(tor, s, 8, 0.05) },
		"targeted": func(s int64) *Campaign {
			return TargetedLinks(s, []int{3, 7, 11, 19, 23, 41}, 4, 0.1)
		},
		"nodes": func(s int64) *Campaign {
			return Nodes(s, []torus.NodeID{1, 9, 33, 60}, 2, 0.1)
		},
	}
	for name, gen := range build {
		a, b := gen(42), gen(42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different campaigns", name)
		}
		c := gen(43)
		if name != "burst" && reflect.DeepEqual(a.Events, c.Events) {
			t.Errorf("%s: different seeds produced identical campaigns", name)
		}
		if err := a.Validate(tor.NumTorusLinks(), tor.Size()); err != nil {
			t.Errorf("%s: generated campaign invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadCampaigns(t *testing.T) {
	cases := map[string]*Campaign{
		"dup-link": {Events: []Event{{At: 1, Link: 5}, {At: 2, Link: 5}}},
		"neg-link": {Events: []Event{{At: 1, Link: -1}}},
		"big-link": {Events: []Event{{At: 1, Link: 1000}}},
		"dup-node": {Events: []Event{{At: 1, Node: 3, IsNode: true}, {At: 2, Node: 3, IsNode: true}}},
		"big-node": {Events: []Event{{At: 1, Node: 500, IsNode: true}}},
		"neg-time": {Events: []Event{{At: -1, Link: 0}}},
		"nan-time": {Events: []Event{{At: sim.Time(nan()), Link: 0}}},
	}
	for name, c := range cases {
		if err := c.Validate(100, 100); err == nil {
			t.Errorf("%s: Validate accepted an invalid campaign", name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestTargetedAlwaysIncludesFirstPoolLink(t *testing.T) {
	pool := []int{17, 3, 7, 11}
	for seed := int64(0); seed < 50; seed++ {
		c := TargetedLinks(seed, pool, 2, 0.1)
		found := false
		for _, ev := range c.Events {
			if ev.Link == 17 {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: targeted campaign omitted pool[0]", seed)
		}
	}
}

func TestApplySchedulesAndAborts(t *testing.T) {
	tor := testTorus(t)
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	route := net.Route(src, dst)
	c := &Campaign{Name: "direct-hit", Events: []Event{{At: 5e-3, Link: route.Links[0]}}}
	id := e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
	if err := c.Apply(e); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r := e.Result(id); !r.Aborted || r.AbortTime != 5e-3 {
		t.Fatalf("aborted=%v at %g, want abort at the campaign instant", r.Aborted, float64(r.AbortTime))
	}
}

func TestApplyRejectsInvalidCampaign(t *testing.T) {
	tor := testTorus(t)
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Events: []Event{{At: 1, Link: 1 << 30}}}
	if err := c.Apply(e); err == nil {
		t.Fatal("Apply accepted an out-of-range link")
	}
}

func TestMTBFRespectsHorizon(t *testing.T) {
	tor := testTorus(t)
	c := MTBFLinks(tor, 7, 0.005, 0.1)
	if len(c.Events) == 0 {
		t.Fatal("mtbf=5ms over 100ms produced no failures")
	}
	for i, ev := range c.Events {
		if ev.At <= 0 || ev.At > 0.1 {
			t.Fatalf("event %d at %g outside (0, horizon]", i, float64(ev.At))
		}
		if i > 0 && ev.At < c.Events[i-1].At {
			t.Fatal("mtbf events out of order")
		}
	}
}
