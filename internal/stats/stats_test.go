package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.Stddev-2.1381) > 1e-3 {
		t.Fatalf("stddev = %g", s.Stddev)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 50)
}

func TestImbalanceRatio(t *testing.T) {
	if got := ImbalanceRatio([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("balanced ratio = %g", got)
	}
	if got := ImbalanceRatio([]float64{0, 0, 4}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("skewed ratio = %g", got)
	}
	if got := ImbalanceRatio(nil); got != 0 {
		t.Fatalf("empty ratio = %g", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		1 << 10:   "1KB",
		256 << 10: "256KB",
		8 << 20:   "8MB",
		2 << 30:   "2GB",
		1500:      "1500B",
	}
	for b, want := range cases {
		if got := HumanBytes(b); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestGBps(t *testing.T) {
	if GBps(1.8e9) != 1.8 {
		t.Fatal("GBps conversion wrong")
	}
}

func TestTableWrite(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"size", "GB/s"}}
	tb.AddRow("1KB", "0.02")
	tb.AddRow("128MB", "3.20")
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "size", "128MB", "3.20", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := math.Mod(math.Abs(p1), 100)
		b := math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		lo, hi := Percentile(raw, a), Percentile(raw, b)
		if lo > hi {
			return false
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return lo >= sorted[0] && hi <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
