package stats

import (
	"math"
	"testing"
)

// A single NaN used to poison Summarize (Min/Max comparisons go false,
// the mean goes NaN) and garble Percentile's sort order; non-finite
// samples are now dropped and counted.
func TestSummarizeDropsNonFinite(t *testing.T) {
	xs := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)}
	s := Summarize(xs)
	if s.N != 3 || s.Dropped != 3 {
		t.Fatalf("N=%d Dropped=%d, want 3 and 3", s.N, s.Dropped)
	}
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("Min=%g Max=%g Mean=%g, want 1, 3, 2", s.Min, s.Max, s.Mean)
	}
	if math.IsNaN(s.Stddev) {
		t.Fatal("Stddev is NaN")
	}
}

func TestSummarizeAllNonFinite(t *testing.T) {
	s := Summarize([]float64{math.NaN(), math.Inf(1)})
	if s.N != 0 || s.Dropped != 2 {
		t.Fatalf("N=%d Dropped=%d, want 0 and 2", s.N, s.Dropped)
	}
}

func TestPercentileDropsNonFinite(t *testing.T) {
	xs := []float64{3, math.NaN(), 1, 2, math.Inf(1)}
	if got := Percentile(xs, 50); got != 2 {
		t.Fatalf("P50 = %g, want 2", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Fatalf("P100 = %g, want 3 (Inf dropped)", got)
	}
}

func TestPercentilePanicsAllNonFinite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for all-NaN sample")
		}
	}()
	Percentile([]float64{math.NaN()}, 50)
}

func TestImbalanceRatioIgnoresNaN(t *testing.T) {
	got := ImbalanceRatio([]float64{2, math.NaN(), 4})
	if want := 4.0 / 3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ImbalanceRatio = %g, want %g", got, want)
	}
}
