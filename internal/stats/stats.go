// Package stats provides the small statistical and tabular-formatting
// helpers the experiment harness uses to print the paper's figures as
// text tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	// Dropped counts NaN/Inf inputs excluded from the statistics; N
	// counts only the finite samples. A single NaN would otherwise
	// poison every comparison-based field (Min/Max stop updating, the
	// mean goes NaN), so non-finite values are dropped and counted
	// rather than propagated.
	Dropped int
}

// Summarize computes a Summary over the finite values of xs; non-finite
// inputs are dropped and counted. An all-dropped or empty sample
// returns a Summary with N == 0.
func Summarize(xs []float64) Summary {
	var s Summary
	var sum float64
	for _, x := range xs {
		if !isFinite(x) {
			s.Dropped++
			continue
		}
		if s.N == 0 {
			s.Min, s.Max = x, x
		} else {
			if x < s.Min {
				s.Min = x
			}
			if x > s.Max {
				s.Max = x
			}
		}
		s.N++
		sum += x
	}
	if s.N == 0 {
		return s
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		if !isFinite(x) {
			continue
		}
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// isFinite reports whether x is a usable sample (not NaN, not ±Inf).
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Percentile returns the p-th percentile (0..100) of the finite values
// of xs by linear interpolation; non-finite inputs are dropped first (a
// NaN would garble the sort order and with it every percentile). It
// panics when no finite sample remains.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if isFinite(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ImbalanceRatio returns max/mean of a sample — the load-imbalance metric
// used for ION loads. An empty or all-zero sample returns 0.
func ImbalanceRatio(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Max / s.Mean
}

// GBps converts bytes/second to gigabytes/second (decimal, as the paper
// plots).
func GBps(bytesPerSecond float64) float64 { return bytesPerSecond / 1e9 }

// HumanBytes renders a byte count like "256KB" or "8MB" using binary
// units, matching the paper's axis labels.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
