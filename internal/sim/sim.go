// Package sim provides a minimal deterministic discrete-event simulation
// engine. It is the clock substrate for the flow-level network simulator in
// package netsim.
//
// The engine maintains virtual time as a float64 number of seconds and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in FIFO order (scheduling order), which keeps runs deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

const (
	// Forever is a time later than any event the engine will ever fire.
	Forever Time = math.MaxFloat64
)

// Microseconds returns the duration expressed in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) * 1e6 }

// Seconds returns the duration as a plain float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Handler is a callback run when an event fires. It receives the engine so
// it can schedule follow-up events.
type Handler func(*Engine)

// Callback is the allocation-free alternative to Handler: a single
// long-lived receiver implements OnEvent and the per-event state travels
// in arg (a pointer fits in an interface without heap allocation). Hot
// schedulers (netsim's per-flow timers) use AtCall/AfterCall with a
// Callback so steady-state event scheduling allocates nothing.
type Callback interface {
	OnEvent(e *Engine, arg any)
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events
	fn  Handler
	cb  Callback
	arg any
	// gen increments every time the event struct is recycled through the
	// engine's freelist, so a stale EventID cannot cancel the event's
	// next incarnation.
	gen uint64
	// index within the heap, maintained by the heap interface; -1 when
	// the event has been removed (cancelled or fired).
	index int
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is valid and never cancels anything.
type EventID struct {
	ev  *event
	gen uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	free    []*event // recycled event structs
	nextSeq uint64
	fired   uint64
	running bool
	stopped bool
}

// NewEngine returns an engine with virtual time set to zero and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPastEvent is returned by At when an event is scheduled before the
// current virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute time t. Scheduling an event in the
// past panics: virtual time is monotone and such a bug must not pass
// silently.
func (e *Engine) At(t Time, fn Handler) EventID {
	return e.schedule(t, fn, nil, nil)
}

// AtCall schedules cb.OnEvent(e, arg) at absolute time t. Unlike At it
// captures no closure: with a long-lived cb and a pointer-typed arg the
// call allocates nothing once the engine's event freelist is warm.
func (e *Engine) AtCall(t Time, cb Callback, arg any) EventID {
	return e.schedule(t, nil, cb, arg)
}

func (e *Engine) schedule(t Time, fn Handler, cb Callback, arg any) EventID {
	if t < e.now {
		panic(fmt.Sprintf("%v: at=%g now=%g", ErrPastEvent, float64(t), float64(e.now)))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.cb, ev.arg = t, e.nextSeq, fn, cb, arg
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev, gen: ev.gen}
}

// recycle returns a popped or cancelled event to the freelist. Bumping gen
// invalidates every EventID issued for the finished incarnation.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.cb, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
}

// After schedules fn to run d seconds from now. Negative durations are
// clamped to zero so rounding error in computed delays cannot panic.
func (e *Engine) After(d Duration, fn Handler) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+Time(d), fn)
}

// AfterCall is AtCall relative to the current time; see AtCall for the
// allocation contract.
func (e *Engine) AfterCall(d Duration, cb Callback, arg any) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtCall(e.now+Time(d), cb, arg)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired or was cancelled earlier).
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	id.ev.index = -1
	e.recycle(id.ev)
	return true
}

// Stop makes Run return after the currently executing event handler
// finishes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(Forever)
}

// RunUntil executes events in time order until the queue drains, Stop is
// called, or the next event lies strictly after deadline. If the run halts
// at the deadline with events still pending, virtual time is advanced to
// the deadline. It returns the final virtual time.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Run re-entered from an event handler")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.fired++
		e.fire(next)
	}
	if deadline != Forever && e.now < deadline && len(e.queue) == 0 {
		e.now = deadline
	}
	return e.now
}

// fire recycles the popped event before invoking its callback, so the
// handler can immediately reuse the struct for follow-up events.
func (e *Engine) fire(ev *event) {
	fn, cb, arg := ev.fn, ev.cb, ev.arg
	e.recycle(ev)
	if cb != nil {
		cb.OnEvent(e, arg)
		return
	}
	fn(e)
}

// Step fires exactly one event if any is pending and reports whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*event)
	e.now = next.at
	e.fired++
	e.fire(next)
	return true
}
