package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func(e *Engine) { order = append(order, e.Now()) })
	}
	e.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, order[i], want[i])
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among same-time events)", i, got, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(10, func(e *Engine) {
		e.After(5, func(e *Engine) { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("nested After fired at %v, want 15", fired)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.At(10, func(e *Engine) {
		e.After(-3, func(e *Engine) { fired = e.Now() })
	})
	e.Run()
	if fired != 10 {
		t.Fatalf("negative After fired at %v, want 10", fired)
	}
}

func TestPastEventPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling at t=5 while now=10 did not panic")
			}
		}()
		e.At(5, func(*Engine) {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(3, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireReturnsFalse(t *testing.T) {
	e := NewEngine()
	id := e.At(1, func(*Engine) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for an already-fired event")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []Time
	var ids []EventID
	for _, at := range []Time{1, 2, 3, 4, 5, 6, 7, 8} {
		at := at
		ids = append(ids, e.At(at, func(e *Engine) { order = append(order, e.Now()) }))
	}
	e.Cancel(ids[3]) // t=4
	e.Cancel(ids[6]) // t=7
	e.Run()
	want := []Time{1, 2, 3, 5, 6, 8}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func(e *Engine) {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	end := e.Run()
	if count != 4 {
		t.Fatalf("fired %d events after Stop, want 4", count)
	}
	if end != 4 {
		t.Fatalf("Run returned %v, want 4", end)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d after Stop, want 6", e.Pending())
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func(e *Engine) { fired = append(fired, e.Now()) })
	}
	end := e.RunUntil(5.5)
	if len(fired) != 5 {
		t.Fatalf("fired %d events by deadline 5.5, want 5", len(fired))
	}
	if end != 5.5 {
		t.Fatalf("RunUntil returned %v, want 5.5", end)
	}
	// Resume to the end.
	end = e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events total, want 10", len(fired))
	}
	if end != 10 {
		t.Fatalf("final time %v, want 10", end)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	end := e.RunUntil(42)
	if end != 42 {
		t.Fatalf("RunUntil on empty queue returned %v, want 42", end)
	}
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func(*Engine) { n++ })
	e.At(2, func(*Engine) { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(Time(i), func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 17 {
		t.Fatalf("Fired() = %d, want 17", e.Fired())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and all of them fire.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Same multiset of times.
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cascading events (each schedules the next) advance time
// monotonically and terminate.
func TestPropertyCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		steps := rng.Intn(200) + 1
		var last Time = -1
		var chain func(remaining int) Handler
		chain = func(remaining int) Handler {
			return func(e *Engine) {
				if e.Now() < last {
					t.Fatalf("time went backwards: %v -> %v", last, e.Now())
				}
				last = e.Now()
				if remaining > 0 {
					e.After(Duration(rng.Float64()), chain(remaining-1))
				}
			}
		}
		e.At(0, chain(steps))
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("cascade left %d pending events", e.Pending())
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(*Engine) {})
		}
		e.Run()
	}
}

type recordCB struct {
	got []any
	at  []Time
}

func (r *recordCB) OnEvent(e *Engine, arg any) {
	r.got = append(r.got, arg)
	r.at = append(r.at, e.Now())
}

func TestAfterCallDeliversArg(t *testing.T) {
	e := NewEngine()
	cb := &recordCB{}
	x, y := new(int), new(int)
	e.AfterCall(2, cb, x)
	e.AtCall(1, cb, y)
	e.Run()
	if len(cb.got) != 2 || cb.got[0] != y || cb.got[1] != x {
		t.Fatalf("callback args out of order: %v", cb.got)
	}
	if cb.at[0] != 1 || cb.at[1] != 2 {
		t.Fatalf("callback times = %v, want [1 2]", cb.at)
	}
}

func TestStaleEventIDCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	cb := &recordCB{}
	id := e.AfterCall(1, cb, nil)
	e.Run()
	// The fired event's struct is recycled; the next scheduled event may
	// reuse it. The stale ID must not cancel the new event.
	e.AfterCall(1, cb, nil)
	if e.Cancel(id) {
		t.Fatal("stale EventID cancelled a recycled event")
	}
	e.Run()
	if len(cb.got) != 2 {
		t.Fatalf("fired %d events, want 2", len(cb.got))
	}
}

func TestCancelledEventIsRecycled(t *testing.T) {
	e := NewEngine()
	cb := &recordCB{}
	id := e.AfterCall(5, cb, nil)
	if !e.Cancel(id) {
		t.Fatal("cancel failed")
	}
	if e.Cancel(id) {
		t.Fatal("double cancel succeeded")
	}
	e.AfterCall(1, cb, nil)
	e.Run()
	if len(cb.got) != 1 {
		t.Fatalf("fired %d events, want 1", len(cb.got))
	}
}

func TestAfterCallSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine()
	cb := &recordCB{}
	arg := new(int)
	// Warm the freelist and the heap's capacity.
	for i := 0; i < 64; i++ {
		e.AfterCall(1, cb, arg)
	}
	e.Run()
	cb.got, cb.at = cb.got[:0], cb.at[:0]
	avg := testing.AllocsPerRun(200, func() {
		e.AfterCall(1, cb, arg)
		e.Run()
		cb.got, cb.at = cb.got[:0], cb.at[:0]
	})
	if avg != 0 {
		t.Fatalf("AfterCall+Run allocates %.1f objects/op, want 0", avg)
	}
}
