package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/sim"
)

// ExportSchema is the schema version written by BuildExport. History:
// v1 (implicit, no "schema" field) had flow timelines and total link
// loads only; v2 adds the "schema" field, abort records, and optional
// time-bucketed link utilization timelines. ReadExport accepts v1 files.
const ExportSchema = 2

// FlowRecord is one flow's timeline in an exported trace.
type FlowRecord struct {
	ID          int     `json:"id"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Bytes       int64   `json:"bytes"`
	Label       string  `json:"label,omitempty"`
	ReleasedS   float64 `json:"released"`
	ActivatedS  float64 `json:"activated"`
	TransferEnd float64 `json:"transferEnd"`
	CompletedS  float64 `json:"completed"`
	// Aborted marks a flow killed by a failure event (its path crossed a
	// link that died mid-flight, or a dependency aborted); AbortedS is the
	// failure instant.
	Aborted  bool    `json:"aborted,omitempty"`
	AbortedS float64 `json:"abortedAt,omitempty"`
}

// LinkRecord is one link's total load in an exported trace.
type LinkRecord struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Bytes float64 `json:"bytes"`
	Util  float64 `json:"util"`
}

// TimelineRecord is the time-bucketed utilization of one link: Util[i]
// is the link's mean utilization over bucket i (i*BucketS of the parent
// Timeline record to (i+1)*BucketS).
type TimelineRecord struct {
	ID   int       `json:"id"`
	Name string    `json:"name"`
	Util []float64 `json:"util"`
}

// Timeline is the optional time-resolved section of an export (schema 2):
// per-link utilization sampled into fixed-width buckets.
type Timeline struct {
	BucketS float64          `json:"bucketSeconds"`
	Links   []TimelineRecord `json:"links"`
}

// Export is a machine-readable run summary for external tooling
// (timeline viewers, notebooks).
type Export struct {
	Schema    int          `json:"schema"` // see ExportSchema
	MakespanS float64      `json:"makespan"`
	Flows     []FlowRecord `json:"flows"`
	Links     []LinkRecord `json:"links"`              // loaded links only
	Timeline  *Timeline    `json:"timeline,omitempty"` // when a LinkTimeline was attached
}

// BuildExport collects the run's flow timelines and link loads. specs,
// when non-nil, must be the FlowSpecs in submission order; pass nil to
// read them back from the engine.
func BuildExport(e *netsim.Engine, makespan sim.Duration, specs []netsim.FlowSpec) (Export, error) {
	if specs == nil {
		specs = make([]netsim.FlowSpec, e.NumFlows())
		for i := range specs {
			specs[i] = e.Spec(netsim.FlowID(i))
		}
	}
	if len(specs) != e.NumFlows() {
		return Export{}, fmt.Errorf("trace: %d specs for %d flows", len(specs), e.NumFlows())
	}
	ex := Export{Schema: ExportSchema, MakespanS: float64(makespan)}
	for i, spec := range specs {
		r := e.Result(netsim.FlowID(i))
		ex.Flows = append(ex.Flows, FlowRecord{
			ID:          i,
			Src:         int(spec.Src),
			Dst:         int(spec.Dst),
			Bytes:       spec.Bytes,
			Label:       spec.Label,
			ReleasedS:   float64(r.Released),
			ActivatedS:  float64(r.Activated),
			TransferEnd: float64(r.TransferEnd),
			CompletedS:  float64(r.Completed),
			Aborted:     r.Aborted,
			AbortedS:    float64(r.AbortTime),
		})
	}
	for l, b := range e.LinkBytes() {
		if b <= 0 {
			continue
		}
		ex.Links = append(ex.Links, LinkRecord{
			ID:    l,
			Name:  e.Network().LinkName(l),
			Bytes: b,
			Util:  LinkUtilization(e, makespan, l),
		})
	}
	return ex, nil
}

// WriteJSON serializes the export.
func (ex Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ex)
}

// AttachTimeline fills the export's time-resolved section from a link
// timeline (typically fed by an obs.EngineSink attached to the engine
// for the run): per-link utilization against the network's capacities,
// loaded links only. It stamps the export at schema 2.
func (ex *Export) AttachTimeline(e *netsim.Engine, tl *obs.LinkTimeline) {
	ex.Schema = ExportSchema
	t := &Timeline{BucketS: float64(tl.Bucket())}
	for _, l := range tl.Links() {
		t.Links = append(t.Links, TimelineRecord{
			ID:   l,
			Name: e.Network().LinkName(l),
			Util: tl.Utilization(l, e.Network().Capacity(l)),
		})
	}
	ex.Timeline = t
}

// RecordFlowSpans emits one complete span per flow of a finished run
// into the recorder, under track: the flow's wire occupancy (activation
// to transfer end, or to the failure instant for aborted flows), named
// by the flow label. It is the batch-run counterpart of attaching an
// obs.EngineSink before the run — planners that only see the engine
// after Run (bgqbench sweep points, scenario files) use it to get
// per-leg spans into a Perfetto trace.
func RecordFlowSpans(rec *obs.Recorder, e *netsim.Engine, track string) {
	for i := 0; i < e.NumFlows(); i++ {
		res := e.Result(netsim.FlowID(i))
		label := e.Spec(netsim.FlowID(i)).Label
		if label == "" {
			label = fmt.Sprintf("flow%d", i)
		}
		switch {
		case res.Done:
			rec.Span(track, label, res.Activated, res.TransferEnd)
		case res.Aborted && res.AbortTime > res.Activated && res.Activated > 0:
			rec.SpanAborted(track, label+" (aborted)", res.Activated, res.AbortTime)
		}
	}
}

// ReadExport parses a previously written export. Files from schema 1
// (which predate the "schema" field) are accepted and normalized to
// Schema == 1; files newer than ExportSchema are rejected.
func ReadExport(r io.Reader) (Export, error) {
	var ex Export
	if err := json.NewDecoder(r).Decode(&ex); err != nil {
		return ex, fmt.Errorf("trace: parse export: %w", err)
	}
	if ex.Schema == 0 {
		ex.Schema = 1
	}
	if ex.Schema > ExportSchema {
		return ex, fmt.Errorf("trace: export schema %d is newer than supported schema %d", ex.Schema, ExportSchema)
	}
	return ex, nil
}
