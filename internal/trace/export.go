package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
)

// FlowRecord is one flow's timeline in an exported trace.
type FlowRecord struct {
	ID          int     `json:"id"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Bytes       int64   `json:"bytes"`
	Label       string  `json:"label,omitempty"`
	ReleasedS   float64 `json:"released"`
	ActivatedS  float64 `json:"activated"`
	TransferEnd float64 `json:"transferEnd"`
	CompletedS  float64 `json:"completed"`
	// Aborted marks a flow killed by a failure event (its path crossed a
	// link that died mid-flight, or a dependency aborted); AbortedS is the
	// failure instant.
	Aborted  bool    `json:"aborted,omitempty"`
	AbortedS float64 `json:"abortedAt,omitempty"`
}

// LinkRecord is one link's total load in an exported trace.
type LinkRecord struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Bytes float64 `json:"bytes"`
	Util  float64 `json:"util"`
}

// Export is a machine-readable run summary for external tooling
// (timeline viewers, notebooks).
type Export struct {
	MakespanS float64      `json:"makespan"`
	Flows     []FlowRecord `json:"flows"`
	Links     []LinkRecord `json:"links"` // loaded links only
}

// BuildExport collects the run's flow timelines and link loads. specs,
// when non-nil, must be the FlowSpecs in submission order; pass nil to
// read them back from the engine.
func BuildExport(e *netsim.Engine, makespan sim.Duration, specs []netsim.FlowSpec) (Export, error) {
	if specs == nil {
		specs = make([]netsim.FlowSpec, e.NumFlows())
		for i := range specs {
			specs[i] = e.Spec(netsim.FlowID(i))
		}
	}
	if len(specs) != e.NumFlows() {
		return Export{}, fmt.Errorf("trace: %d specs for %d flows", len(specs), e.NumFlows())
	}
	ex := Export{MakespanS: float64(makespan)}
	for i, spec := range specs {
		r := e.Result(netsim.FlowID(i))
		ex.Flows = append(ex.Flows, FlowRecord{
			ID:          i,
			Src:         int(spec.Src),
			Dst:         int(spec.Dst),
			Bytes:       spec.Bytes,
			Label:       spec.Label,
			ReleasedS:   float64(r.Released),
			ActivatedS:  float64(r.Activated),
			TransferEnd: float64(r.TransferEnd),
			CompletedS:  float64(r.Completed),
			Aborted:     r.Aborted,
			AbortedS:    float64(r.AbortTime),
		})
	}
	for l, b := range e.LinkBytes() {
		if b <= 0 {
			continue
		}
		ex.Links = append(ex.Links, LinkRecord{
			ID:    l,
			Name:  e.Network().LinkName(l),
			Bytes: b,
			Util:  LinkUtilization(e, makespan, l),
		})
	}
	return ex, nil
}

// WriteJSON serializes the export.
func (ex Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ex)
}

// ReadExport parses a previously written export.
func ReadExport(r io.Reader) (Export, error) {
	var ex Export
	if err := json.NewDecoder(r).Decode(&ex); err != nil {
		return ex, fmt.Errorf("trace: parse export: %w", err)
	}
	return ex, nil
}
