package trace

import (
	"strings"
	"testing"

	"bgqflow/internal/ionet"
	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

func runSmall(t *testing.T) (*netsim.Engine, *ionet.System, sim.Duration) {
	t.Helper()
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	// One torus flow and one write.
	e.Submit(netsim.FlowSpec{Src: 0, Dst: 9, Bytes: 4 << 20})
	links, bridge := ios.WriteRoute(5)
	e.Submit(netsim.FlowSpec{Src: 5, Dst: bridge, Bytes: 2 << 20, Links: links})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, ios, mk
}

func TestAnalyze(t *testing.T) {
	e, _, mk := runSmall(t)
	r := Analyze(e, mk, 5)
	if r.TorusBytes <= 0 {
		t.Fatal("no torus traffic recorded")
	}
	if r.ExtraBytes != 2<<20 {
		t.Fatalf("uplink traffic %g, want %d", r.ExtraBytes, 2<<20)
	}
	if r.BusyTorusLinks == 0 || r.BusyTorusLinks > r.TotalTorusLinks {
		t.Fatalf("busy links %d of %d", r.BusyTorusLinks, r.TotalTorusLinks)
	}
	if len(r.Hottest) == 0 || len(r.Hottest) > 5 {
		t.Fatalf("hottest %d", len(r.Hottest))
	}
	for i := 1; i < len(r.Hottest); i++ {
		if r.Hottest[i].Bytes > r.Hottest[i-1].Bytes {
			t.Fatal("hottest not sorted descending")
		}
	}
}

func TestLinkUtilizationBounds(t *testing.T) {
	e, _, mk := runSmall(t)
	for l := 0; l < e.Network().NumLinks(); l++ {
		u := LinkUtilization(e, 0, l)
		if u != 0 {
			t.Fatal("zero makespan should report zero utilization")
		}
		u = LinkUtilization(e, mk, l)
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("link %d utilization %g outside [0,1]", l, u)
		}
	}
}

func TestUplinkLoads(t *testing.T) {
	e, ios, _ := runSmall(t)
	loads := UplinkLoads(e, ios)
	if len(loads) != ios.NumPsets()*2 {
		t.Fatalf("%d uplink loads", len(loads))
	}
	var total float64
	for _, l := range loads {
		total += l
	}
	if total != 2<<20 {
		t.Fatalf("uplinks carried %g, want %d", total, 2<<20)
	}
}

func TestReportWriteTo(t *testing.T) {
	e, _, mk := runSmall(t)
	r := Analyze(e, mk, 3)
	var sb strings.Builder
	if err := r.WriteTo(&sb, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "makespan") {
		t.Fatalf("report missing makespan: %s", sb.String())
	}
}
