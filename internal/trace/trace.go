// Package trace post-processes netsim runs into utilization reports:
// which links carried how much, how balanced the I/O-node uplinks were,
// and which links were the hot spots. The experiment harness uses these
// reports to show *why* the topology-aware mechanisms win (idle links
// under default routing, uplink imbalance under default collective I/O).
package trace

import (
	"fmt"
	"io"
	"sort"

	"bgqflow/internal/ionet"
	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
)

// LinkLoad pairs a link with the bytes it carried.
type LinkLoad struct {
	Link  int
	Bytes float64
}

// Report summarizes one finished run.
type Report struct {
	Makespan sim.Duration
	// TorusBytes and ExtraBytes split traffic between torus links and
	// registered extra links (ION uplinks).
	TorusBytes float64
	ExtraBytes float64
	// BusyTorusLinks counts torus links that carried any traffic.
	BusyTorusLinks int
	// TotalTorusLinks is the number of torus links in the network.
	TotalTorusLinks int
	// Hottest lists the most loaded links, descending.
	Hottest []LinkLoad
}

// Analyze builds a Report from a finished engine run.
func Analyze(e *netsim.Engine, makespan sim.Duration, topN int) Report {
	r := Report{Makespan: makespan, TotalTorusLinks: e.Network().NumTorusLinks()}
	lb := e.LinkBytes()
	loads := make([]LinkLoad, 0, 64)
	for l, b := range lb {
		if b <= 0 {
			continue
		}
		if l < r.TotalTorusLinks {
			r.TorusBytes += b
			r.BusyTorusLinks++
		} else {
			r.ExtraBytes += b
		}
		loads = append(loads, LinkLoad{Link: l, Bytes: b})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].Bytes > loads[j].Bytes })
	if topN > len(loads) {
		topN = len(loads)
	}
	r.Hottest = loads[:topN]
	return r
}

// LinkUtilization returns a link's average utilization over the run.
func LinkUtilization(e *netsim.Engine, makespan sim.Duration, link int) float64 {
	if makespan <= 0 {
		return 0
	}
	return e.LinkBytes()[link] / (e.Network().Capacity(link) * float64(makespan))
}

// UplinkLoads returns the bytes carried by every ION uplink, in pset then
// bridge order.
func UplinkLoads(e *netsim.Engine, ios *ionet.System) []float64 {
	lb := e.LinkBytes()
	out := make([]float64, 0, ios.NumPsets()*ios.Config().BridgesPerPset)
	for pi := 0; pi < ios.NumPsets(); pi++ {
		ps := ios.Pset(pi)
		for bi := range ps.Bridges {
			out = append(out, lb[ps.Uplink(bi)])
		}
	}
	return out
}

// WriteTo renders the report for humans.
func (r Report) WriteTo(w io.Writer, e *netsim.Engine) error {
	if _, err := fmt.Fprintf(w,
		"makespan %.3fms; torus traffic %.2f GB over %d/%d links; uplink traffic %.2f GB\n",
		float64(r.Makespan)*1e3, r.TorusBytes/1e9, r.BusyTorusLinks, r.TotalTorusLinks,
		r.ExtraBytes/1e9); err != nil {
		return err
	}
	for _, ll := range r.Hottest {
		util := LinkUtilization(e, r.Makespan, ll.Link)
		if _, err := fmt.Fprintf(w, "  %-40s %8.2f MB  util %.0f%%\n",
			e.Network().LinkName(ll.Link), ll.Bytes/1e6, util*100); err != nil {
			return err
		}
	}
	return nil
}
