package trace

import (
	"bytes"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func TestBuildExportAndRoundTrip(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	specs := []netsim.FlowSpec{
		{Src: 0, Dst: 9, Bytes: 1 << 20, Label: "a"},
		{Src: 3, Dst: 77, Bytes: 2 << 20, Label: "b"},
	}
	var ids []netsim.FlowID
	for _, s := range specs {
		ids = append(ids, e.Submit(s))
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = ids
	ex, err := BuildExport(e, mk, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Flows) != 2 {
		t.Fatalf("%d flow records", len(ex.Flows))
	}
	if ex.Flows[0].Label != "a" || ex.Flows[1].Bytes != 2<<20 {
		t.Fatal("flow records wrong")
	}
	if len(ex.Links) == 0 {
		t.Fatal("no link records")
	}
	for _, lr := range ex.Links {
		if lr.Bytes <= 0 || lr.Util < 0 || lr.Util > 1+1e-9 {
			t.Fatalf("bad link record %+v", lr)
		}
	}
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MakespanS != ex.MakespanS || len(back.Flows) != len(ex.Flows) || len(back.Links) != len(ex.Links) {
		t.Fatal("round trip lost data")
	}
}

func TestBuildExportSpecMismatch(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	e, _ := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	e.Submit(netsim.FlowSpec{Src: 0, Dst: 1, Bytes: 1})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildExport(e, mk, make([]netsim.FlowSpec, 5)); err == nil {
		t.Fatal("spec count mismatch accepted")
	}
	// nil specs read back from the engine.
	ex, err := BuildExport(e, mk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Flows) != 1 {
		t.Fatalf("engine-sourced export has %d flows", len(ex.Flows))
	}
}

func TestReadExportBadJSON(t *testing.T) {
	if _, err := ReadExport(bytes.NewBufferString("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
