package trace

import (
	"bytes"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/torus"
)

func TestBuildExportAndRoundTrip(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	specs := []netsim.FlowSpec{
		{Src: 0, Dst: 9, Bytes: 1 << 20, Label: "a"},
		{Src: 3, Dst: 77, Bytes: 2 << 20, Label: "b"},
	}
	var ids []netsim.FlowID
	for _, s := range specs {
		ids = append(ids, e.Submit(s))
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = ids
	ex, err := BuildExport(e, mk, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Flows) != 2 {
		t.Fatalf("%d flow records", len(ex.Flows))
	}
	if ex.Flows[0].Label != "a" || ex.Flows[1].Bytes != 2<<20 {
		t.Fatal("flow records wrong")
	}
	if len(ex.Links) == 0 {
		t.Fatal("no link records")
	}
	for _, lr := range ex.Links {
		if lr.Bytes <= 0 || lr.Util < 0 || lr.Util > 1+1e-9 {
			t.Fatalf("bad link record %+v", lr)
		}
	}
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MakespanS != ex.MakespanS || len(back.Flows) != len(ex.Flows) || len(back.Links) != len(ex.Links) {
		t.Fatal("round trip lost data")
	}
}

func TestBuildExportSpecMismatch(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	e, _ := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	e.Submit(netsim.FlowSpec{Src: 0, Dst: 1, Bytes: 1})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildExport(e, mk, make([]netsim.FlowSpec, 5)); err == nil {
		t.Fatal("spec count mismatch accepted")
	}
	// nil specs read back from the engine.
	ex, err := BuildExport(e, mk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Flows) != 1 {
		t.Fatalf("engine-sourced export has %d flows", len(ex.Flows))
	}
}

func TestReadExportBadJSON(t *testing.T) {
	if _, err := ReadExport(bytes.NewBufferString("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// TestExportSchema2RoundTrip covers the schema-2 export end to end: an
// aborted flow's record survives the round trip, an attached timeline is
// preserved, v1 files (no "schema" field) are accepted and normalized,
// and files newer than ExportSchema are rejected.
func TestExportSchema2RoundTrip(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.NewLinkTimeline(1e-3)
	rec := obs.NewRecorder()
	e.SetSink(rec.EngineSink("run", tl))

	e.Submit(netsim.FlowSpec{Src: 0, Dst: 127, Bytes: 8 << 20, Label: "ok"})
	victim := e.Submit(netsim.FlowSpec{Src: 1, Dst: 127, Bytes: 8 << 20, Label: "dead"})
	e.FailLinkAt(e.FlowRouteLinks(victim)[0], 1e-3)
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := BuildExport(e, mk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schema != ExportSchema {
		t.Fatalf("schema = %d, want %d", ex.Schema, ExportSchema)
	}
	ex.AttachTimeline(e, tl)
	if ex.Timeline == nil || len(ex.Timeline.Links) == 0 || ex.Timeline.BucketS != 1e-3 {
		t.Fatalf("timeline not attached: %+v", ex.Timeline)
	}

	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != ExportSchema {
		t.Fatalf("round-trip schema = %d", back.Schema)
	}
	var sawAbort bool
	for _, f := range back.Flows {
		if f.Label == "dead" {
			sawAbort = true
			if !f.Aborted || f.AbortedS != 1e-3 {
				t.Fatalf("aborted record lost its marker: %+v", f)
			}
		}
	}
	if !sawAbort {
		t.Fatal("aborted flow missing from round trip")
	}
	if len(back.Timeline.Links) != len(ex.Timeline.Links) {
		t.Fatal("timeline lost in round trip")
	}
	for i, l := range back.Timeline.Links {
		if len(l.Util) != len(ex.Timeline.Links[i].Util) {
			t.Fatalf("link %d utilization series truncated", l.ID)
		}
	}

	// Flow spans recorded post hoc from the finished engine: done flows
	// plus the aborted one (which has a real activation window).
	rec2 := obs.NewRecorder()
	RecordFlowSpans(rec2, e, "post")
	spans := rec2.Spans()
	if len(spans) != 2 {
		t.Fatalf("RecordFlowSpans emitted %d spans, want 2", len(spans))
	}
	var postAbort bool
	for _, s := range spans {
		if s.Aborted {
			postAbort = true
		}
	}
	if !postAbort {
		t.Fatal("RecordFlowSpans dropped the aborted flow's span")
	}
}

func TestReadExportSchemaVersions(t *testing.T) {
	// v1 file: no "schema" field at all.
	v1 := `{"makespan": 0.5, "flows": [], "links": []}`
	ex, err := ReadExport(bytes.NewBufferString(v1))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schema != 1 {
		t.Fatalf("v1 file normalized to schema %d, want 1", ex.Schema)
	}
	// Future schema: reject.
	future := `{"schema": 3, "makespan": 0.5}`
	if _, err := ReadExport(bytes.NewBufferString(future)); err == nil {
		t.Fatal("schema 3 file accepted")
	}
}
