// Benchmark harness: one testing.B target per data figure of the paper
// (Figs. 5-11) plus one per ablation from DESIGN.md. Each benchmark runs
// the corresponding experiment in quick mode (trimmed sweeps) and reports
// the figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. The bgqbench command
// runs the same experiments at full fidelity; EXPERIMENTS.md records the
// full-sweep numbers against the paper's.
package main

import (
	"testing"

	"bgqflow/internal/experiments"
	"bgqflow/internal/routing"
)

func quickOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Quick = true
	return o
}

// BenchmarkFig5PointToPoint regenerates Fig. 5: point-to-point PUT
// throughput with and without 4 proxies on the 128-node 2x2x4x4x2
// partition. Reported metrics: large-message throughput of both curves
// and the proxy gain (paper: ~2x, crossover 256KB).
func BenchmarkFig5PointToPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Direct.Points) - 1
		b.ReportMetric(res.Direct.Points[last].GBps, "direct-GB/s")
		b.ReportMetric(res.Proxied.Points[last].GBps, "proxied-GB/s")
		b.ReportMetric(res.Proxied.Points[last].GBps/res.Direct.Points[last].GBps, "gain-x")
	}
}

// BenchmarkFig6GroupToGroup regenerates Fig. 6: transfers between two
// 256-node groups on the 2K-node 4x4x4x16x2 partition with 3 proxy
// groups (paper: ~1.5x, proxied plateau ~2.4 GB/s).
func BenchmarkFig6GroupToGroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Direct.Points) - 1
		b.ReportMetric(res.Proxied.Points[last].GBps, "proxied-GB/s")
		b.ReportMetric(res.Proxied.Points[last].GBps/res.Direct.Points[last].GBps, "gain-x")
	}
}

// BenchmarkFig7ProxyCount regenerates Fig. 7: throughput versus the
// number of proxy groups for 2x32-node groups on 4x4x4x4x2 (paper: 2
// groups no gain, 3 -> 1.5x, 4 -> 2x, 5 degrades).
func BenchmarkFig7ProxyCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Curves[0].Points) - 1
		direct := res.Curves[0].Points[last].GBps
		for ci, c := range res.Curves[1:] {
			b.ReportMetric(c.Points[last].GBps/direct, []string{"g2-x", "g3-x", "g4-x", "g5-x"}[ci])
		}
	}
}

// BenchmarkFig8UniformHistogram regenerates Fig. 8: the Pattern 1
// (uniform) per-rank size histogram over 1,024 ranks.
func BenchmarkFig8UniformHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.Fig8(int64(i + 1))
		if h.TotalCount() != 1024 {
			b.Fatal("histogram lost samples")
		}
	}
}

// BenchmarkFig9ParetoHistogram regenerates Fig. 9: the Pattern 2
// (Pareto) per-rank size histogram over 1,024 ranks.
func BenchmarkFig9ParetoHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.Fig9(int64(i + 1))
		if h.TotalCount() != 1024 {
			b.Fatal("histogram lost samples")
		}
	}
}

// BenchmarkFig10Aggregation regenerates Fig. 10 (quick scales):
// aggregation throughput to the I/O nodes under Patterns 1 and 2,
// topology-aware dynamic aggregation versus default MPI collective I/O
// (paper: 2x growing to 3x for Pattern 1; 1.5x to 2x for Pattern 2).
func BenchmarkFig10Aggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.OursP1.Points) - 1
		b.ReportMetric(res.OursP1.Points[last].GBps/res.DefaultP1.Points[last].GBps, "p1-gain-x")
		b.ReportMetric(res.OursP2.Points[last].GBps/res.DefaultP2.Points[last].GBps, "p2-gain-x")
	}
}

// BenchmarkFig11HACCIO regenerates Fig. 11 (quick scale): HACC I/O write
// throughput, customized aggregator selection versus default collective
// I/O (paper: up to 50% improvement).
func BenchmarkFig11HACCIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Ours.Points) - 1
		b.ReportMetric(res.Ours.Points[last].GBps/res.Default.Points[last].GBps, "gain-x")
	}
}

// BenchmarkAblationThreshold checks the Eq. 5 cost model: gain over
// direct per proxy count (k=2 must not win; k=4 ~2x for large messages).
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationThreshold(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Curves[0].Points) - 1
		b.ReportMetric(res.Curves[0].Points[last].GBps, "k2-gain-x")
		b.ReportMetric(res.Curves[2].Points[last].GBps, "k4-gain-x")
	}
}

// BenchmarkAblationPlacement compares link-disjoint proxy placement
// against naive random intermediates.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPlacement(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DisjointGBps/res.NaiveGBps, "disjoint-vs-naive-x")
	}
}

// BenchmarkAblationAggCount compares the dynamic data-size-driven
// aggregator count against fixed per-pset counts.
func BenchmarkAblationAggCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAggCount(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DynamicGBps, "dynamic-GB/s")
	}
}

// BenchmarkExtStorage runs the E1 extension: aggregation through the
// GPFS-like storage tier versus the paper's /dev/null sink.
func BenchmarkExtStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtStorage(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].OursGBps/res.Rows[0].DefaultGBps, "devnull-gain-x")
		b.ReportMetric(res.Rows[2].OursGBps/res.Rows[2].DefaultGBps, "scarce-gain-x")
	}
}

// BenchmarkExtMapping runs the E2 extension: rank-mapping sensitivity of
// the HACC burst.
func BenchmarkExtMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtMapping(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Mapping == "ABCDET" {
				b.ReportMetric(row.OursGBps/row.DefGBps, "block-gain-x")
			}
		}
	}
}

// BenchmarkExtPipeline runs the E3 extension: the paper's future-work
// pipelined store-and-forward making k=2 profitable.
func BenchmarkExtPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtPipeline(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Direct.Points) - 1
		b.ReportMetric(res.PipedK2.Points[last].GBps/res.Direct.Points[last].GBps, "pipedk2-gain-x")
	}
}

// BenchmarkExtValidation runs the E4 extension: flow-vs-packet model
// agreement.
func BenchmarkExtValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtValidation(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range res.Rows {
			if row.DiffPct > worst {
				worst = row.DiffPct
			}
		}
		b.ReportMetric(worst, "worst-diff-%")
	}
}

// BenchmarkAblationZones measures routing-zone path diversity for
// concurrent same-pair messages.
func BenchmarkAblationZones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationZones(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, z := range res.PerZone {
			if z.Zone == routing.ZoneUnrestricted {
				b.ReportMetric(z.GBps, "zone1-GB/s")
			}
		}
	}
}

// BenchmarkExtInsitu runs the E5 extension: the Fig. 10 comparison on
// bursts produced by real in-situ threshold analysis.
func BenchmarkExtInsitu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtInsitu(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Rows) - 1
		b.ReportMetric(res.Rows[last].OursGBps/res.Rows[last].DefaultGBps, "gain-x")
	}
}
