package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bgqflow/internal/serve"
)

// buildTool compiles one of the repo's commands into a temp dir and
// returns the binary path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestToruscalcCLI(t *testing.T) {
	bin := buildTool(t, "cmd/toruscalc")
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-shape", "2x2x4x4x2", "route", "0", "127"}, "deterministic route"},
		{[]string{"-shape", "4x4x4x16x2", "psets"}, "16 psets"},
		{[]string{"-shape", "2x2x4x4x2", "proxies", "0", "127"}, "link-disjoint proxies"},
		{[]string{"-shape", "2x2x4x4x2", "zones", "0", "127", "1048576"}, "flexibility"},
		{[]string{"-shape", "2x2x4x4x2", "map", "TABCDE", "2"}, "mapping TABCDE"},
	}
	for _, c := range cases {
		out, err := exec.Command(bin, c.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("toruscalc %v: %v\n%s", c.args, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("toruscalc %v output missing %q:\n%s", c.args, c.want, out)
		}
	}
	// Bad input exits nonzero.
	if err := exec.Command(bin, "-shape", "2x2", "route", "0", "99").Run(); err == nil {
		t.Fatal("bad node accepted")
	}
}

func TestBgqsimCLI(t *testing.T) {
	bin := buildTool(t, "cmd/bgqsim")
	cmd := exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader(`{
		"shape": "2x2x4x4x2",
		"transfer": {"kind": "pair", "src": 0, "dst": 127, "bytes": 33554432, "proxies": 4}
	}`)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("bgqsim: %v\n%s", err, out.String())
	}
	for _, want := range []string{"mode:", "proxied", "throughput:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("bgqsim output missing %q:\n%s", want, out.String())
		}
	}
	// Scenario files from the repo run too.
	out2, err := exec.Command(bin, "examples/scenarios/pair-proxied.json").CombinedOutput()
	if err != nil {
		t.Fatalf("bgqsim file: %v\n%s", err, out2)
	}
	// Invalid scenario exits nonzero.
	bad := exec.Command(bin, "-")
	bad.Stdin = strings.NewReader(`{"shape": "2x2x4x4x2"}`)
	if err := bad.Run(); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

// Input problems must exit 2 up front — before any simulation work —
// matching the bgqbench convention; only runtime failures exit 1.
func TestBgqsimFlagValidation(t *testing.T) {
	bin := buildTool(t, "cmd/bgqsim")
	missing := filepath.Join(t.TempDir(), "nope.json")
	cases := []struct {
		name  string
		args  []string
		stdin string
		want  string
	}{
		{"no args", nil, "", "usage:"},
		{"two args", []string{"a.json", "b.json"}, "", "usage:"},
		{"unreadable file", []string{missing}, "", "no such file"},
		{"invalid json", []string{"-"}, `{"shape": }`, "parse"},
		{"invalid scenario", []string{"-"}, `{"shape": "2x2x4x4x2"}`, "scenario"},
		{"bad trace dir", []string{"-trace", filepath.Join(missing, "t.json"), "-"},
			`{"shape":"2x2x4x4x2","transfer":{"kind":"pair","src":0,"dst":1,"bytes":1024}}`, "trace"},
	}
	for _, c := range cases {
		cmd := exec.Command(bin, c.args...)
		if c.stdin != "" {
			cmd.Stdin = strings.NewReader(c.stdin)
		}
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s: accepted, output:\n%s", c.name, out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("%s: want exit 2, got %v\n%s", c.name, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("%s: error output missing %q:\n%s", c.name, c.want, out)
		}
		if strings.Contains(string(out), "throughput:") {
			t.Fatalf("%s: simulation ran despite invalid input:\n%s", c.name, out)
		}
	}
}

func TestBgqdFlagValidation(t *testing.T) {
	bin := buildTool(t, "cmd/bgqd")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad listen", []string{"-listen", "nonsense"}, "-listen"},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"negative queue", []string{"-queue", "-5"}, "-queue"},
		{"negative shards", []string{"-shards", "-2"}, "-shards"},
		{"negative retry-after", []string{"-retry-after", "-1s"}, "-retry-after"},
		{"negative max-sessions", []string{"-max-sessions", "-1"}, "-max-sessions"},
		{"negative session-idle", []string{"-session-idle", "-1s"}, "-session-idle"},
		{"negative replay-events", []string{"-replay-events", "-3"}, "-replay-events"},
		{"negative batch-window", []string{"-batch-window", "-1ms"}, "-batch-window"},
		{"zero drain-timeout", []string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{"extra args", []string{"surprise"}, "unexpected arguments"},
	}
	for _, c := range cases {
		out, err := exec.Command(bin, c.args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("%s: want exit 2, got %v\n%s", c.name, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("%s: error output missing %q:\n%s", c.name, c.want, out)
		}
	}
}

func TestBgqloadFlagValidation(t *testing.T) {
	bin := buildTool(t, "cmd/bgqload")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no addr", nil, "-addr"},
		{"bad mode", []string{"-addr", "x:1", "-mode", "sideways"}, "mode"},
		{"bad pattern", []string{"-addr", "x:1", "-patterns", "bogus"}, "pattern"},
		{"bad shape", []string{"-addr", "x:1", "-shape", "nope"}, "shape"},
		{"zero rps", []string{"-addr", "x:1", "-rps", "0"}, "rps"},
		{"bad p99 ratio", []string{"-addr", "x:1", "-p99-ratio", "0"}, "-p99-ratio"},
		{"bad shed rate", []string{"-addr", "x:1", "-max-shed-rate", "1.5"}, "-max-shed-rate"},
		{"missing baseline", []string{"-addr", "x:1", "-baseline", filepath.Join(t.TempDir(), "nope.json")}, "baseline"},
		{"session no addr", []string{"-sessions", "4"}, "-addr"},
		{"negative sessions", []string{"-addr", "x:1", "-sessions", "-2"}, "sessions"},
		{"bad session pattern", []string{"-addr", "x:1", "-sessions", "4", "-pattern", "bogus"}, "pattern"},
		{"bad session shape", []string{"-addr", "x:1", "-sessions", "4", "-shape", "nope"}, "shape"},
		{"negative min-resumes", []string{"-addr", "x:1", "-sessions", "4", "-min-resumes", "-1"}, "-min-resumes"},
		{"negative min-pushed-faults", []string{"-addr", "x:1", "-sessions", "4", "-min-pushed-faults", "-1"}, "-min-pushed-faults"},
	}
	for _, c := range cases {
		out, err := exec.Command(bin, c.args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("%s: want exit 2, got %v\n%s", c.name, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("%s: error output missing %q:\n%s", c.name, c.want, out)
		}
	}
}

// TestBgqdBgqloadEndToEnd spawns a real bgqd on a Unix socket and drives
// it with bgqload — the miniature of `make soak`.
func TestBgqdBgqloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bgqd := buildTool(t, "cmd/bgqd")
	bgqload := buildTool(t, "cmd/bgqload")
	sock := filepath.Join(t.TempDir(), "bgqd.sock")

	daemon := exec.Command(bgqd, "-socket", sock)
	var dout bytes.Buffer
	daemon.Stdout = &dout
	daemon.Stderr = &dout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(os.Interrupt)
		daemon.Wait()
	}()
	// Wait for the socket to appear.
	for i := 0; ; i++ {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("bgqd never bound %s:\n%s", sock, dout.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	reportPath := filepath.Join(t.TempDir(), "load.json")
	out, err := exec.Command(bgqload,
		"-addr", "unix://"+sock, "-duration", "2s", "-rps", "150",
		"-seed", "7", "-json", reportPath, "-require-coalesce").CombinedOutput()
	if err != nil {
		t.Fatalf("bgqload: %v\n%s\ndaemon:\n%s", err, out, dout.String())
	}
	for _, want := range []string{"0 5xx", "all soak gates passed"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("bgqload output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests  int   `json:"requests"`
		Status5xx int   `json:"status_5xx"`
		CacheHits int64 `json:"cache_hits"`
		Coalesced int64 `json:"coalesced"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Status5xx != 0 || rep.CacheHits+rep.Coalesced == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestBgqbenchQuickCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqbench")
	out, err := exec.Command(bin, "-quick", "-run", "fig5").CombinedOutput()
	if err != nil {
		t.Fatalf("bgqbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "crossover") {
		t.Fatalf("bgqbench output missing crossover:\n%s", out)
	}
	if err := exec.Command(bin, "-run", "nonsense").Run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Bad flags must be rejected up front — exit 2 with a one-line error
// before any experiment runs — so a typo can't kill a long sweep
// halfway through.
func TestBgqbenchFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqbench")
	cases := []struct {
		name string
		args []string
		want string // substring of the one-line stderr error
	}{
		{"unknown name in list", []string{"-run", "fig5,nonsense"}, "unknown experiment"},
		{"unknown mode alias", []string{"-mode", "nonsense"}, "unknown experiment"},
		{"unreadable compare", []string{"-run", "fig5", "-compare", filepath.Join(t.TempDir(), "missing.json")}, "compare"},
		{"negative parallel", []string{"-run", "fig5", "-parallel", "-2"}, "-parallel"},
		{"check with obs-trace", []string{"-run", "fig5", "-check", "-obs-trace", "x.json"}, "-check"},
		{"check with metrics", []string{"-run", "fig5", "-check", "-metrics", "m.json"}, "-check"},
	}
	for _, c := range cases {
		out, err := exec.Command(bin, c.args...).CombinedOutput()
		if err == nil {
			t.Fatalf("%s: accepted, output:\n%s", c.name, out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("%s: want exit 2, got %v", c.name, err)
		}
		if !strings.Contains(string(out), c.want) {
			t.Fatalf("%s: error output missing %q:\n%s", c.name, c.want, out)
		}
		// The run never starts: no experiment output, just the error.
		if strings.Contains(string(out), "completed in") {
			t.Fatalf("%s: experiment ran despite invalid flags:\n%s", c.name, out)
		}
	}
}

// -check audits every engine the runner builds and reports a per-runner
// summary; a clean run exits zero.
func TestBgqbenchCheckCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqbench")
	out, err := exec.Command(bin, "-check", "-quick", "-run", "fig5,r1").CombinedOutput()
	if err != nil {
		t.Fatalf("bgqbench -check: %v\n%s", err, out)
	}
	for _, want := range []string{"[fig5 check:", "[r1 check:", "0 violations"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("missing %q in -check output:\n%s", want, out)
		}
	}
	if strings.Contains(string(out), " 0 engines audited") {
		t.Fatalf("-check audited no engines:\n%s", out)
	}
}

// TestBgqbenchObsTraceCLI is the PR's acceptance check: the r1 quick run
// with -obs-trace must produce valid Chrome trace-event JSON containing
// proxy-leg and replan spans, -metrics must produce a readable snapshot,
// and the -json report must embed the metrics.
func TestBgqbenchObsTraceCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqbench")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	reportPath := filepath.Join(dir, "report.json")
	out, err := exec.Command(bin, "-run", "r1", "-quick",
		"-obs-trace", tracePath, "-metrics", metricsPath, "-json", reportPath).CombinedOutput()
	if err != nil {
		t.Fatalf("bgqbench: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("obs trace is not valid JSON: %v", err)
	}
	var proxySpans, replanSpans int
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if strings.Contains(e.Name, "proxy") {
			proxySpans++
		}
		if strings.Contains(e.Name, "replan") {
			replanSpans++
		}
	}
	if proxySpans == 0 || replanSpans == 0 {
		t.Fatalf("trace has %d proxy spans and %d replan spans, want both > 0", proxySpans, replanSpans)
	}

	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &metrics); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if metrics.Counters["transport/replans"] == 0 || metrics.Counters["netsim/flows_done"] == 0 {
		t.Fatalf("metrics counters missing expected entries: %v", metrics.Counters)
	}

	var report struct {
		Metrics *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	rraw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rraw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Metrics == nil || report.Metrics.Counters["transport/replans"] == 0 {
		t.Fatal("-json report did not embed the metrics snapshot")
	}
}

// startBgqd spawns a bgqd binary on a fresh Unix socket and waits for
// the bind; the returned buffer accumulates both output streams.
func startBgqd(t *testing.T, bin string, extra ...string) (*exec.Cmd, *bytes.Buffer, *serve.Client) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "bgqd.sock")
	daemon := exec.Command(bin, append([]string{"-socket", sock}, extra...)...)
	var out bytes.Buffer
	daemon.Stdout = &out
	daemon.Stderr = &out
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		daemon.Process.Kill()
		daemon.Wait() // second Wait after a test's own is a harmless error
	})
	for i := 0; ; i++ {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("bgqd never bound %s:\n%s", sock, out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	client, err := serve.NewClient("unix://" + sock)
	if err != nil {
		t.Fatal(err)
	}
	return daemon, &out, client
}

// TestBgqdDrainCLI covers the graceful-shutdown contract end to end:
// SIGTERM with a session in flight drains it and exits 0; an expired
// -drain-timeout aborts the session and the daemon exits 1 so
// supervisors can see the drain was not clean.
func TestBgqdDrainCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqd")

	launch := func(client *serve.Client, id string, paceUS int, pol serve.RetryPolicy) (<-chan struct{}, <-chan struct{}, *serve.TransferOutcome, *error) {
		started := make(chan struct{})
		done := make(chan struct{})
		var out serve.TransferOutcome
		var terr error
		go func() {
			defer close(done)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			var once sync.Once
			out, terr = client.Transfer(ctx, serve.TransferRequest{
				ID: id, Shape: "2x2x4x4x2", Src: 0, Dst: 97, Bytes: 64 << 20, PaceUS: paceUS,
			}, serve.TransferOpts{
				Backoff: pol,
				OnFrame: func(serve.SessionFrame) { once.Do(func() { close(started) }) },
			})
		}()
		return started, done, &out, &terr
	}

	t.Run("clean", func(t *testing.T) {
		daemon, dout, client := startBgqd(t, bin, "-drain-timeout", "30s")
		started, done, out, terr := launch(client, "cli-drain-ok", 2000, serve.RetryPolicy{})
		<-started
		daemon.Process.Signal(syscall.SIGTERM)
		if err := daemon.Wait(); err != nil {
			t.Fatalf("clean drain exited nonzero: %v\n%s", err, dout.String())
		}
		if !strings.Contains(dout.String(), "1 sessions finished, 0 aborted") {
			t.Errorf("daemon output missing clean drain line:\n%s", dout.String())
		}
		<-done
		if *terr != nil || out.Err != "" || len(out.Report) == 0 {
			t.Fatalf("in-flight session failed under clean drain: %v / %q", *terr, out.Err)
		}
	})

	t.Run("aborted", func(t *testing.T) {
		daemon, dout, client := startBgqd(t, bin, "-drain-timeout", "150ms")
		// Paced hard enough that the session cannot finish inside 150ms;
		// no retries, so the client gives up once the daemon is gone.
		started, done, _, _ := launch(client, "cli-drain-abort", 50000, serve.NoRetryPolicy())
		<-started
		daemon.Process.Signal(syscall.SIGTERM)
		err := daemon.Wait()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("dirty drain: want exit 1, got %v\n%s", err, dout.String())
		}
		if !strings.Contains(dout.String(), "1 aborted") {
			t.Errorf("daemon output missing aborted drain line:\n%s", dout.String())
		}
		<-done
	})
}

// TestBgqloadSessionsCLI runs the session chaos soak in miniature via
// the -selftest daemon: all gates green, report archived and readable.
func TestBgqloadSessionsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "cmd/bgqload")
	reportPath := filepath.Join(t.TempDir(), "sessions.json")
	out, err := exec.Command(bin,
		"-selftest", "-sessions", "16", "-seed", "7", "-batch-every", "1",
		"-min-resumes", "1", "-json", reportPath).CombinedOutput()
	if err != nil {
		t.Fatalf("bgqload -sessions: %v\n%s", err, out)
	}
	for _, want := range []string{"0 lost, 0 mismatched, 0 duplicated", "all session gates passed"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("bgqload output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Completed int  `json:"completed"`
		Lost      int  `json:"lost"`
		Verified  bool `json:"verified"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 16 || rep.Lost != 0 || !rep.Verified {
		t.Fatalf("bad session report: %+v", rep)
	}
}
