module bgqflow

go 1.22
