GO ?= go

.PHONY: build test lint verify bench bench-scale quick check check-topo soak soak-sessions soak-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static checks: go vet plus a gofmt cleanliness gate (gofmt -l prints
# offending files; any output fails the target).
lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Tier-1 verification: full build + static checks + tests, plus the race
# detector over the packages that run worker pools or schedule failure
# events (see ROADMAP.md), plus the differential-oracle suite, plus a
# 10-second bgqload smoke against an in-process daemon (zero 5xx,
# coalescing observed, zero SLO breaches), plus the short-mode session
# chaos soak (real daemon, mid-run SIGTERM/restart, byte-verified
# session reports, SLO-gated, merged Perfetto trace archived), plus the
# short-mode cluster chaos soak (three gossiping replicas, mid-run
# kill -9 and rejoin, zero stale plans).
#
# The telemetry gate also proves the disabled trace plane is free: the
# paired wall-span benchmark must report 0 B/op with tracing off, so
# the hot path never pays for observability nobody asked for.
verify: build lint check check-topo
	$(GO) test ./...
	$(GO) test -race ./internal/experiments ./internal/netsim ./internal/faultinject ./internal/serve ./internal/cluster
	$(GO) test -run '^$$' -bench 'BenchmarkWallSpan' -benchmem ./internal/obs | \
		awk '/^BenchmarkWallSpanDisabled/ { print; if ($$5 + 0 != 0 || $$7 + 0 != 0) { print "FAIL: disabled trace plane allocates"; exit 1 } found = 1 } END { if (!found) { print "FAIL: BenchmarkWallSpanDisabled did not run"; exit 1 } }'
	$(GO) run ./cmd/bgqload -selftest -duration 10s -rps 300 -agg-every 16 -seed 7 -require-coalesce -require-slo
	$(GO) run ./cmd/bgqload -selftest -sessions 8 -drop-every 3 -min-resumes 1 -require-slo
	SOAK_SHORT=1 ./scripts/soak_sessions.sh
	SOAK_SHORT=1 ./scripts/soak_cluster.sh

# Correctness oracle (DESIGN.md §11): the invariant + differential test
# suite (200 generated scenarios through both engines, the archived
# divergence corpus, and the mutation tests that prove each invariant
# still fires), invariant auditors over every experiment runner, and a
# short randomized-fuzz smoke over the differential oracle.
check:
	$(GO) test ./internal/check
	$(GO) run ./cmd/bgqbench -check -quick -run all
	$(GO) test -fuzz='FuzzDifferential$$' -fuzztime=30s -run '^$$' ./internal/check

# Topology-plane oracle: the 200-seed dragonfly/fat-tree differential
# suite plus invariant audits and the topology round-trip/identity
# pins, an audited bgqbench cross-topology run, and a short fuzz smoke
# over the topology differential.
check-topo:
	$(GO) test -run 'Topo' -count=1 ./internal/check ./internal/netsim ./internal/packetsim ./internal/scenario ./internal/serve
	$(GO) run ./cmd/bgqbench -check -quick -run topo
	$(GO) test -fuzz=FuzzDifferentialTopo -fuzztime=15s -run '^$$' ./internal/check

# Fast smoke run of every figure.
quick:
	$(GO) run ./cmd/bgqbench -quick -run all

# Figure benchmarks with allocation counts, then a bgqbench run that
# writes BENCH_<date>.json and prints a one-line comparison against the
# most recent previous BENCH_*.json (the performance trajectory).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	./scripts/bench.sh

# Full-machine tentpole benchmark (DESIGN.md §13): 48K nodes / 131,072
# ranks through the incremental waterfill, archived as
# BENCH_SCALE_<date>.json. Fails on a >2x wall-clock regression against
# the most recent committed BENCH_SCALE_*.json. Not part of `make
# verify` (it is a multi-second perf gate, not a correctness gate); run
# it before merging engine-touching changes.
bench-scale:
	./scripts/bench.sh scale

# Load/soak gate: spawn a real bgqd on a Unix socket, drive it with
# bgqload for 30s at a fixed request rate, fail on any 5xx, on a shed
# rate above 50%, or on a p99 regression against the checked-in baseline
# (scripts/soak_baseline.json). Archives the report as LOAD_<date>.json.
soak:
	./scripts/soak.sh

# Session chaos soak (DESIGN.md §14): 1000 concurrent resilient
# transfer sessions against a real bgqd with fault events, forced
# disconnects, and a mid-run SIGTERM/restart. Gates: zero lost, zero
# duplicated, zero mismatched sessions (every report byte-identical to
# a direct MoveResilient replay), with resumes and pushed faults
# actually exercised. Archives SESSIONS_<date>.json.
soak-sessions:
	./scripts/soak_sessions.sh

# Cluster chaos soak (DESIGN.md §17): three clustered bgqd replicas on
# Unix sockets driven through bgqload's consistent-hash ring mode with
# fault events interleaved into the load; one replica is kill -9'd at a
# third of the run and restarted at two thirds. Gates: zero stale plans
# (every response's fault-epoch vector dominates the client's demand),
# zero 5xx/transport errors, p99 within 5x the single-daemon baseline,
# no hot shard. Archives CLUSTER_<date>.json.
soak-cluster:
	./scripts/soak_cluster.sh
