GO ?= go

.PHONY: build test lint verify bench quick

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static checks: go vet plus a gofmt cleanliness gate (gofmt -l prints
# offending files; any output fails the target).
lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Tier-1 verification: full build + static checks + tests, plus the race
# detector over the packages that run worker pools or schedule failure
# events (see ROADMAP.md).
verify: build lint
	$(GO) test ./...
	$(GO) test -race ./internal/experiments ./internal/netsim ./internal/faultinject

# Fast smoke run of every figure.
quick:
	$(GO) run ./cmd/bgqbench -quick -run all

# Figure benchmarks with allocation counts, then a bgqbench run that
# writes BENCH_<date>.json and prints a one-line comparison against the
# most recent previous BENCH_*.json (the performance trajectory).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	./scripts/bench.sh
