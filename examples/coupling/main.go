// Coupling: the multiphysics data-coupling scenario. Two physics modules
// occupy two 256-node regions of a 2K-node partition; at every coupling
// step the first module ships a field to the second. The example compares
// the default direct transfers against the proxy-group multipath plan and
// shows how many links each approach keeps busy.
//
// Run with: go run ./examples/coupling
package main

import (
	"fmt"
	"log"
	"os"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
	"bgqflow/internal/trace"
)

func main() {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	params := netsim.DefaultParams()

	// The atmosphere module on one slab, the ocean module on another.
	atmosphere := torus.MustNewBox(tor, torus.Coord{0, 0, 0, 0, 0}, torus.Shape{1, 4, 4, 16, 1})
	ocean := torus.MustNewBox(tor, torus.Coord{2, 0, 0, 0, 1}, torus.Shape{1, 4, 4, 16, 1})
	const fieldBytes = 8 << 20 // per node pair and coupling step

	fmt.Printf("coupling %d node pairs, %d MB per pair, on a %v torus\n\n",
		atmosphere.Size(), fieldBytes>>20, tor.Shape())

	run := func(name string, threshold int64) {
		cfg := core.DefaultProxyConfig()
		cfg.Threshold = threshold
		gp, err := core.NewGroupPlanner(tor, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e, err := netsim.NewEngine(netsim.NewNetwork(tor, params.LinkBandwidth), params)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := gp.Plan(e, atmosphere, ocean, fieldBytes)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		perPair := netsim.Throughput(fieldBytes, mk)
		agg := netsim.Throughput(plan.TotalBytes, mk)
		fmt.Printf("%s: mode=%v groups=%v\n", name, plan.Mode, plan.Groups)
		fmt.Printf("  per-pair %.2f GB/s, aggregate %.1f GB/s, coupling step %.2f ms\n",
			perPair/1e9, agg/1e9, float64(mk)*1e3)
		rep := trace.Analyze(e, mk, 3)
		rep.WriteTo(os.Stdout, e)
		fmt.Println()
	}

	run("direct (default routing)", 1<<62) // threshold never reached -> direct
	run("multipath (Algorithm 1)", core.DefaultProxyConfig().Threshold)
}
