// Failover: surviving link failures, both ahead of planning and in the
// middle of a transfer. The first half plans the same 64 MB transfer on
// a healthy partition and on partitions with pre-existing faults — the
// planner routes around anything that is already dead. The second half
// is the interesting case: links die *mid-flight*, the affected proxy
// pieces abort at the failure instant, and the resilient transfer loop
// detects the loss, replans the remaining bytes around the new faults,
// and degrades toward fewer proxies until everything lands. The whole
// recovery is recorded through the observability layer: the example
// writes a Perfetto trace (open it at ui.perfetto.dev) and asserts the
// span sequence — transfer running, fault instant, replan span, then
// completion — programmatically, on top of asserting full delivery.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"bgqflow/internal/core"
	"bgqflow/internal/faultinject"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// tracePath is where the Perfetto trace of the recovery lands.
const tracePath = "failover-trace.json"

func main() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()
	src := torus.NodeID(0)
	dst := torus.NodeID(tor.Size() - 1)
	const bytes = 64 << 20

	fmt.Println("-- planning around pre-existing faults --")

	run := func(name string, fail func(net *netsim.Network)) {
		net := netsim.NewNetwork(tor, params.LinkBandwidth)
		if fail != nil {
			fail(net)
		}
		pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
		if err != nil {
			log.Fatal(err)
		}
		if net.HasFailures() {
			pl.SetFaults(net.FailedFunc())
		}
		e, err := netsim.NewEngine(net, params)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := pl.PlanPair(e, src, dst, bytes)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %v with %d proxies: %5.2f GB/s\n",
			name, plan.Mode, len(plan.Proxies), netsim.Throughput(bytes, mk)/1e9)
	}

	run("healthy partition:", nil)

	run("default route loses a link:", func(net *netsim.Network) {
		def := routing.DeterministicRoute(tor, src, dst)
		net.FailLink(def.Links[2])
	})

	run("failure burst at the source:", func(net *netsim.Network) {
		// Kill four of the ten links out of the source node.
		net.FailLink(tor.LinkID(src, 2, torus.Plus))
		net.FailLink(tor.LinkID(src, 2, torus.Minus))
		net.FailLink(tor.LinkID(src, 3, torus.Plus))
		net.FailLink(tor.LinkID(src, 0, torus.Plus))
	})

	fmt.Println("\n-- recovering from mid-transfer failures --")

	// Plan against a healthy network, then let a seeded campaign fail
	// links while the transfer is in flight. The recovery loop notices
	// the aborted pieces (detection timeout from the Eq. 1-5 cost
	// model), replans them around the dead links, and keeps going.
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.NewTransport(tor, params, core.DefaultProxyConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Record everything: the engine sink produces per-leg flow spans,
	// failure instants, and the link utilization timeline; the transport
	// recorder adds the wave / replan / degrade structure on top.
	rec := obs.NewRecorder()
	timeline := obs.NewLinkTimeline(1e-3)
	e.SetSink(rec.EngineSink("net", timeline))
	tr.SetRecorder(rec, "transfer")
	e.BeginInteractive()
	// Target the campaign at links the transfer actually uses — the
	// direct route plus the first hop of every proxy leg — so failures
	// are guaranteed to land mid-flight rather than on idle links.
	pool := routing.DeterministicRoute(tor, src, dst).Links
	pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range pl.SelectProxies(src, dst) {
		pool = append(pool, pr.Leg1.Links[0], pr.Leg2.Links[0])
	}
	camp := faultinject.TargetedLinks(42, pool, 5, sim.Time(10e-3))
	if err := camp.Apply(e); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %q: %d in-use links fail within the first 10 ms\n",
		camp.Name, len(camp.Events))

	rep, err := tr.MoveResilient(e, src, dst, bytes, core.DefaultRecoveryConfig())
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	done, aborted := e.Outcomes()
	fmt.Printf("delivered %d/%d bytes in %.2f ms: %d waves, %d replans, %d pieces aborted and rerouted\n",
		rep.Delivered, rep.Bytes, float64(rep.Makespan)*1e3, rep.Attempts, rep.Replans, aborted)
	fmt.Printf("flows: %d completed, %d aborted; final mode %v, effective %.2f GB/s\n",
		done, aborted, rep.FinalMode, netsim.Throughput(rep.Delivered, rep.Makespan)/1e9)

	if !rep.Complete || rep.Delivered != bytes {
		log.Fatalf("recovery left %d bytes undelivered", bytes-rep.Delivered)
	}
	fmt.Println("all bytes delivered despite mid-transfer failures")

	// Render the link utilization timeline as counter tracks and write
	// the whole recording as a Perfetto trace.
	rec.TimelineCounters(timeline,
		func(l int) string { return "util " + net.LinkName(l) },
		func(l int) float64 { return net.Capacity(l) })
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d spans to %s — open it at ui.perfetto.dev\n", len(rec.Spans()), tracePath)

	assertSpanSequence(rec)
	fmt.Println("span sequence checks out: transfer -> fault -> replan -> completion")
}

// assertSpanSequence verifies the recovery's causal story as told by the
// trace: the overall transfer span opens first and completes (not
// aborted); the first fault instant lands inside it while flows are in
// flight; a replan span begins at or after that fault; and the transfer
// completes only after the last replan ends.
func assertSpanSequence(rec *obs.Recorder) {
	var transfer *obs.Span
	var firstReplan, lastReplan *obs.Span
	spans := rec.Spans()
	for i := range spans {
		s := &spans[i]
		switch {
		case s.Track == "transfer" && !s.Aborted:
			transfer = s
		case strings.HasPrefix(s.Name, "replan "):
			if firstReplan == nil {
				firstReplan = s
			}
			lastReplan = s
		}
	}
	if transfer == nil {
		log.Fatal("trace has no completed transfer span")
	}
	if firstReplan == nil {
		log.Fatal("trace has no replan span")
	}
	var fault *obs.Instant
	for _, in := range rec.Instants() {
		if in.Track == "net/failures" {
			fault = &in
			break
		}
	}
	if fault == nil {
		log.Fatal("trace has no fault instant")
	}
	if !(transfer.Begin <= fault.At && fault.At < transfer.End) {
		log.Fatalf("fault at %v outside the transfer span [%v, %v]", fault.At, transfer.Begin, transfer.End)
	}
	if firstReplan.Begin < fault.At {
		log.Fatalf("replan begins at %v, before the first fault at %v", firstReplan.Begin, fault.At)
	}
	if transfer.End < lastReplan.End {
		log.Fatalf("transfer completes at %v, before the last replan ends at %v", transfer.End, lastReplan.End)
	}
}
