// Failover: link failures on the default path. The example plans the
// same 64 MB transfer three times: on a healthy partition, after the
// default route loses a link (the planner reroutes and keeps all proxy
// paths it can), and after a burst of failures around the source. The
// simulator refuses flows over failed links, so completion proves the
// planner routed around every fault.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func main() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()
	src := torus.NodeID(0)
	dst := torus.NodeID(tor.Size() - 1)
	const bytes = 64 << 20

	run := func(name string, fail func(net *netsim.Network)) {
		net := netsim.NewNetwork(tor, params.LinkBandwidth)
		if fail != nil {
			fail(net)
		}
		pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
		if err != nil {
			log.Fatal(err)
		}
		if net.HasFailures() {
			pl.SetFaults(net.FailedFunc())
		}
		e, err := netsim.NewEngine(net, params)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := pl.PlanPair(e, src, dst, bytes)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %v with %d proxies: %5.2f GB/s\n",
			name, plan.Mode, len(plan.Proxies), netsim.Throughput(bytes, mk)/1e9)
	}

	run("healthy partition:", nil)

	run("default route loses a link:", func(net *netsim.Network) {
		def := routing.DeterministicRoute(tor, src, dst)
		net.FailLink(def.Links[2])
	})

	run("failure burst at the source:", func(net *netsim.Network) {
		// Kill four of the ten links out of the source node.
		net.FailLink(tor.LinkID(src, 2, torus.Plus))
		net.FailLink(tor.LinkID(src, 2, torus.Minus))
		net.FailLink(tor.LinkID(src, 3, torus.Plus))
		net.FailLink(tor.LinkID(src, 0, torus.Plus))
	})
}
