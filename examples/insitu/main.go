// Insitu: a genuine in-situ analysis pipeline. The simulation holds a
// distributed 3-D scalar field (internal/field); the in-situ analysis
// thresholds it for regions of interest, and each rank writes only its
// above-threshold cells (with their surrounding high-resolution
// sub-blocks). Because the structures are spatially concentrated, the
// burst is sparse and heavy-tailed — the organic origin of the paper's
// Pattern 2. The example compares the default MPI collective write
// against the topology-aware dynamic aggregation and prints the
// resulting I/O-node load balance.
//
// Run with: go run ./examples/insitu
package main

import (
	"fmt"
	"log"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/field"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/stats"
	"bgqflow/internal/torus"
	"bgqflow/internal/trace"
	"bgqflow/internal/workload"
)

func main() {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2}) // 2048 nodes, 32768 cores
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	job, err := mpisim.NewJob(tor, 16)
	if err != nil {
		log.Fatal(err)
	}

	// One analysis cell per 192^3/32768 brick; each above-threshold cell
	// writes its 32 KB high-resolution sub-block.
	grid, err := field.NewGrid(192, 192, 192, 32, 32, 32)
	if err != nil {
		log.Fatal(err)
	}
	fld, err := field.Synthesize(grid, 6, 2026)
	if err != nil {
		log.Fatal(err)
	}
	const subBlockBytes = 32 << 10
	const threshold = 0.35
	data := fld.ExtractSizes(threshold, subBlockBytes)
	ranksWithData, volume := field.Sparsity(data, grid.CellsPerRank(), subBlockBytes)
	fmt.Printf("in-situ analysis: %d ranks over a %dx%dx%d field, threshold %.2f\n",
		job.NumRanks(), grid.NX, grid.NY, grid.NZ, threshold)
	fmt.Printf("burst: %.1f GB (%.1f%% of dense), %.0f%% of ranks hold data, %d ranks empty\n\n",
		float64(workload.Total(data))/1e9, volume*100, ranksWithData*100,
		workload.CountZero(data))

	type outcome struct {
		name string
		gbps float64
		imb  float64
	}
	var outcomes []outcome

	// Default MPI collective I/O.
	{
		e, err := netsim.NewEngine(net, params)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := collio.NewPlanner(ios, job, params, collio.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		gbps := float64(plan.TotalBytes) / (float64(mk) + float64(plan.Metadata)) / 1e9
		imb := stats.ImbalanceRatio(trace.UplinkLoads(e, ios))
		fmt.Printf("default collective I/O: %d aggregators, %d rounds\n", plan.NumAggregators, plan.Rounds)
		outcomes = append(outcomes, outcome{"default MPI collective I/O", gbps, imb})
	}

	// Topology-aware dynamic aggregation.
	{
		e, err := netsim.NewEngine(net, params)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := core.NewAggPlanner(ios, job, params, core.DefaultAggConfig())
		if err != nil {
			log.Fatal(err)
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		gbps := float64(plan.TotalBytes) / (float64(mk) + float64(plan.Metadata)) / 1e9
		imb := stats.ImbalanceRatio(trace.UplinkLoads(e, ios))
		fmt.Printf("topology-aware aggregation: %d aggregators (%d per pset), %d sender nodes\n",
			plan.NumAggregators, plan.AggPerPset, plan.Senders)
		outcomes = append(outcomes, outcome{"topology-aware aggregation", gbps, imb})
	}

	fmt.Println()
	for _, o := range outcomes {
		fmt.Printf("%-30s %6.2f GB/s   uplink max/mean %.2f\n", o.name, o.gbps, o.imb)
	}
	fmt.Printf("\nspeedup: %.2fx\n", outcomes[1].gbps/outcomes[0].gbps)
}
