// Haccio: the paper's application benchmark. A HACC-like cosmology run
// (internal/hacc: leapfrog particles, 38-byte checkpoint records)
// periodically writes a checkpoint slice: only the ranks in the window
// [0.4N, 0.5N) hold particles to write. The example evolves real
// particles, serializes their records to /dev/null, then drives both
// I/O paths at 8,192 cores on the simulator and reports the write
// throughput to the I/O nodes.
//
// Run with: go run ./examples/haccio
package main

import (
	"fmt"
	"io"
	"log"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/hacc"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

func main() {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2}) // 512 nodes = 8192 cores
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	job, err := mpisim.NewJob(tor, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Evolve one representative writer rank's particles and serialize a
	// real checkpoint, so the burst sizes below are the sizes of actual
	// HACC-format records.
	const particlesPerWriter = 171_000
	sim, err := hacc.NewSim(particlesPerWriter, 64, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		sim.Step(0.1)
	}
	written, err := sim.Checkpoint(io.Discard) // the paper's /dev/null
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one writer's checkpoint: %d particles, %d bytes (%d B/record)\n",
		sim.NumParticles(), written, hacc.RecordBytes)

	data := workload.HACC(job.NumRanks(), particlesPerWriter)
	writers := job.NumRanks() - workload.CountZero(data)
	for r, d := range data {
		if d != 0 && d != written {
			log.Fatalf("rank %d burst %d does not match serialized checkpoint %d", r, d, written)
		}
	}
	fmt.Printf("HACC checkpoint: %d cores, %d writer ranks (window [0.4N,0.5N)), %.1f GB burst\n\n",
		job.NumRanks(), writers, float64(workload.Total(data))/1e9)

	// Default collective write.
	eDef, err := netsim.NewEngine(net, params)
	if err != nil {
		log.Fatal(err)
	}
	defPl, err := collio.NewPlanner(ios, job, params, collio.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defPlan, err := defPl.Plan(eDef, data)
	if err != nil {
		log.Fatal(err)
	}
	mkDef, err := eDef.Run()
	if err != nil {
		log.Fatal(err)
	}
	defGBps := float64(defPlan.TotalBytes) / (float64(mkDef) + float64(defPlan.Metadata)) / 1e9

	// Customized aggregator selection.
	eOurs, err := netsim.NewEngine(net, params)
	if err != nil {
		log.Fatal(err)
	}
	oursPl, err := core.NewAggPlanner(ios, job, params, core.DefaultAggConfig())
	if err != nil {
		log.Fatal(err)
	}
	oursPlan, err := oursPl.Plan(eOurs, data)
	if err != nil {
		log.Fatal(err)
	}
	mkOurs, err := eOurs.Run()
	if err != nil {
		log.Fatal(err)
	}
	oursGBps := float64(oursPlan.TotalBytes) / (float64(mkOurs) + float64(oursPlan.Metadata)) / 1e9

	fmt.Printf("default MPI collective I/O:      %6.2f GB/s (%d aggregators, %d rounds)\n",
		defGBps, defPlan.NumAggregators, defPlan.Rounds)
	fmt.Printf("customized aggregator selection: %6.2f GB/s (%d aggregators, %d per pset)\n",
		oursGBps, oursPlan.NumAggregators, oursPlan.AggPerPset)
	fmt.Printf("\nimprovement: %.0f%%\n", (oursGBps/defGBps-1)*100)
}
