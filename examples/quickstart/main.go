// Quickstart: move a large message between the two far corners of a
// 128-node BG/Q partition, first over the default single deterministic
// path, then over four link-disjoint proxy paths, and compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func main() {
	// A 128-node partition wired as a 2x2x4x4x2 torus, the geometry of
	// the paper's first microbenchmark.
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()

	src := torus.NodeID(0)
	dst := torus.NodeID(tor.Size() - 1)
	const bytes = 64 << 20

	fmt.Printf("moving %d MB from %v to %v on a %v torus\n\n",
		bytes>>20, tor.Coord(src), tor.Coord(dst), tor.Shape())

	// --- Direct: the default deterministic single path. ---
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, params.LinkBandwidth), params)
	if err != nil {
		log.Fatal(err)
	}
	e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	direct := netsim.Throughput(bytes, mk)
	r := routing.DeterministicRoute(tor, src, dst)
	fmt.Printf("direct: single %d-hop path, %.2f GB/s\n", r.Hops(), direct/1e9)
	fmt.Printf("  route: %s\n\n", routing.DescribeRoute(tor, r))

	// --- Proxied: Algorithm 1 with up to 4 proxies. ---
	cfg := core.DefaultProxyConfig()
	cfg.MaxProxies = 4
	planner, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := netsim.NewEngine(netsim.NewNetwork(tor, params.LinkBandwidth), params)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.PlanPair(e2, src, dst, bytes)
	if err != nil {
		log.Fatal(err)
	}
	mk2, err := e2.Run()
	if err != nil {
		log.Fatal(err)
	}
	proxied := netsim.Throughput(bytes, mk2)
	fmt.Printf("proxied: %v via %d proxies, %.2f GB/s (%.2fx)\n",
		plan.Mode, len(plan.Proxies), proxied/1e9, proxied/direct)
	for _, pr := range plan.Proxies {
		fmt.Printf("  %s%s proxy at %v: legs %d + %d hops\n",
			pr.Dir, torus.DimNames[pr.Dim], tor.Coord(pr.Proxy), pr.Leg1.Hops(), pr.Leg2.Hops())
	}
}
