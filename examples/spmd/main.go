// Spmd: write a rank program instead of a transfer plan. A mini coupled
// simulation runs on 128 nodes: every rank computes, halo-exchanges with
// its +D/-D neighbors, and every few steps the first half of the machine
// (the "atmosphere") couples a field to the second half (the "ocean").
// The program is ordinary blocking MPI-style code; the runtime executes
// it in virtual time on the simulated torus, so the printed times include
// real link contention.
//
// Run with: go run ./examples/spmd
package main

import (
	"fmt"
	"log"

	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func main() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()
	job, err := mpisim.NewJob(tor, 1) // one rank per node
	if err != nil {
		log.Fatal(err)
	}
	rt, err := mpisim.NewRuntime(job, netsim.NewNetwork(tor, params.LinkBandwidth), params)
	if err != nil {
		log.Fatal(err)
	}

	const (
		steps         = 5
		computeTime   = 2e-3 // per step
		haloBytes     = 256 << 10
		couplingBytes = 4 << 20 // per pair, every couple step
	)
	n := job.NumRanks()
	half := n / 2

	end, err := rt.Run(func(r *mpisim.Rank) error {
		me := r.ID()
		for s := 0; s < steps; s++ {
			// Compute phase.
			if err := r.Compute(computeTime); err != nil {
				return err
			}
			// Halo exchange with ring neighbors.
			if err := r.Send((me+1)%n, haloBytes); err != nil {
				return err
			}
			if _, err := r.Recv((me + n - 1) % n); err != nil {
				return err
			}
			// Every other step, couple atmosphere -> ocean.
			if s%2 == 1 {
				if me < half {
					if err := r.Send(me+half, couplingBytes); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(me - half); err != nil {
						return err
					}
				}
			}
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var moved float64
	for _, b := range rt.Engine().LinkBytes() {
		moved += b
	}
	fmt.Printf("%d ranks, %d coupled steps in %.2f ms of virtual time\n", n, steps, float64(end)*1e3)
	fmt.Printf("torus carried %.2f GB of halo + coupling traffic\n", moved/1e9)
	fmt.Printf("(compute alone would take %.2f ms; the rest is communication)\n", float64(steps)*computeTime*1e3)
}
