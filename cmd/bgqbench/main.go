// Command bgqbench regenerates every data figure of the paper's
// evaluation (Figs. 5-11) plus the ablations in DESIGN.md, printing each
// as a text table.
//
// Usage:
//
//	bgqbench [-run fig5|fig6|fig7|fig8|fig9|fig10|fig11|ablations|all] [-quick]
//
// -quick trims the sweeps (fewer message sizes, smaller top scale) for a
// fast smoke run; the default regenerates the full figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bgqflow/internal/experiments"
	"bgqflow/internal/stats"
)

func main() {
	run := flag.String("run", "all", "which experiment to run: fig5..fig11, ablations, extensions, or all")
	quick := flag.Bool("quick", false, "trimmed sweeps for a fast smoke run")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Quick = *quick

	selected := strings.Split(*run, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	runners := []struct {
		name string
		fn   func(experiments.Options) error
	}{
		{"fig5", printFig5},
		{"fig6", printFig6},
		{"fig7", printFig7},
		{"fig8", printFig8},
		{"fig9", printFig9},
		{"fig10", printFig10},
		{"fig11", printFig11},
		{"ablations", printAblations},
		{"extensions", printExtensions},
	}
	any := false
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		any = true
		start := time.Now()
		if err := r.fn(opt); err != nil {
			fmt.Fprintf(os.Stderr, "bgqbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "bgqbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func printCurveTable(title, xlabel string, curves ...experiments.Curve) error {
	t := stats.Table{Title: title, Headers: []string{xlabel}}
	for _, c := range curves {
		t.Headers = append(t.Headers, c.Name+" (GB/s)")
	}
	for i := range curves[0].Points {
		row := []string{stats.HumanBytes(curves[0].Points[i].Bytes)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.3f", c.Points[i].GBps))
		}
		t.AddRow(row...)
	}
	return t.Write(os.Stdout)
}

func printFig5(opt experiments.Options) error {
	res, err := experiments.Fig5(opt)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig. 5: point-to-point PUT throughput with and w/o proxies in %v", res.Shape)
	if err := printCurveTable(title, "size", res.Direct, res.Proxied); err != nil {
		return err
	}
	fmt.Printf("crossover (proxied first wins): %s\n", stats.HumanBytes(res.Crossover))
	return nil
}

func printFig6(opt experiments.Options) error {
	res, err := experiments.Fig6(opt)
	if err != nil {
		return err
	}
	names := make([]string, len(res.Groups))
	for i, g := range res.Groups {
		names[i] = g.String()
	}
	title := fmt.Sprintf("Fig. 6: group-to-group PUT throughput, 2x256 nodes in %v (proxy groups: %s)",
		res.Shape, strings.Join(names, " "))
	if err := printCurveTable(title, "size", res.Direct, res.Proxied); err != nil {
		return err
	}
	fmt.Printf("crossover (proxied first wins): %s\n", stats.HumanBytes(res.Crossover))
	return nil
}

func printFig7(opt experiments.Options) error {
	res, err := experiments.Fig7(opt)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig. 7: throughput vs number of proxy groups, 2x32 nodes in %v", res.Shape)
	return printCurveTable(title, "size", res.Curves...)
}

func printFig8(experiments.Options) error {
	fmt.Println("Fig. 8: Pattern 1 histogram (1,024 ranks, uniform 0-8MB)")
	fmt.Print(experiments.Fig8(1).String())
	return nil
}

func printFig9(experiments.Options) error {
	fmt.Println("Fig. 9: Pattern 2 histogram (1,024 ranks, Pareto 0-8MB)")
	fmt.Print(experiments.Fig9(1).String())
	return nil
}

func printScaleTable(title string, curves ...experiments.ScaleCurve) error {
	t := stats.Table{Title: title, Headers: []string{"cores"}}
	for _, c := range curves {
		t.Headers = append(t.Headers, c.Name+" (GB/s)")
	}
	for i := range curves[0].Points {
		row := []string{fmt.Sprint(curves[0].Points[i].Cores)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.3f", c.Points[i].GBps))
		}
		t.AddRow(row...)
	}
	return t.Write(os.Stdout)
}

func printFig10(opt experiments.Options) error {
	res, err := experiments.Fig10(opt)
	if err != nil {
		return err
	}
	return printScaleTable("Fig. 10: aggregation throughput to ION /dev/null (weak scaling)",
		res.OursP1, res.OursP2, res.DefaultP1, res.DefaultP2)
}

func printFig11(opt experiments.Options) error {
	res, err := experiments.Fig11(opt)
	if err != nil {
		return err
	}
	if err := printScaleTable("Fig. 11: HACC I/O write throughput to ION /dev/null",
		res.Ours, res.Default); err != nil {
		return err
	}
	for i, gb := range res.BurstGB {
		fmt.Printf("  burst at %d cores: %.1f GB\n", res.Ours.Points[i].Cores, gb)
	}
	return nil
}

func printAblations(opt experiments.Options) error {
	a1, err := experiments.AblationThreshold(opt)
	if err != nil {
		return err
	}
	if err := printCurveTable("Ablation A1: gain over direct vs message size per proxy count (Eq. 5 check)",
		"size", a1.Curves...); err != nil {
		return err
	}

	a2, err := experiments.AblationPlacement(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nAblation A2: placement at %s: direct %.2f GB/s, link-disjoint (%d proxies) %.2f GB/s, naive random %.2f GB/s\n",
		stats.HumanBytes(a2.Bytes), a2.DirectGBps, a2.DisjointProxies, a2.DisjointGBps, a2.NaiveGBps)

	a3, err := experiments.AblationAggCount(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nAblation A3: aggregator count at %d cores (%.1f GB burst): dynamic (%d/pset) %.2f GB/s",
		a3.Cores, a3.BurstGB, a3.DynamicPerPset, a3.DynamicGBps)
	for _, f := range a3.Fixed {
		fmt.Printf(", fixed %d/pset %.2f GB/s", f.PerPset, f.GBps)
	}
	fmt.Println()

	a4, err := experiments.AblationZones(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nAblation A4: %d concurrent %s messages between one pair, per routing zone:\n",
		a4.Messages, stats.HumanBytes(a4.Bytes))
	for _, z := range a4.PerZone {
		fmt.Printf("  %-28s %.2f GB/s\n", z.Zone, z.GBps)
	}

	a5, err := experiments.AblationRoundSync(opt)
	if err != nil {
		return err
	}
	fmt.Printf("\nAblation A5: collective I/O round synchronization at %d cores: synced %.2f GB/s, unsynced %.2f GB/s, ours %.2f GB/s\n",
		a5.Cores, a5.SyncedGBps, a5.UnsyncedGBps, a5.OursGBps)
	return nil
}

func printExtensions(opt experiments.Options) error {
	e1, err := experiments.ExtStorage(opt)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:   fmt.Sprintf("Extension E1: storage tier behind the IONs (%d cores, %.0f GB Pattern 1 burst)", e1.Cores, e1.BurstGB),
		Headers: []string{"sink", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e1.Rows {
		t.AddRow(r.Sink, fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefaultGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefaultGBps))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	e2, err := experiments.ExtMapping(opt)
	if err != nil {
		return err
	}
	t2 := stats.Table{
		Title:   fmt.Sprintf("\nExtension E2: rank-mapping sensitivity (HACC burst, %d cores)", e2.Cores),
		Headers: []string{"mapping", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e2.Rows {
		t2.AddRow(r.Mapping, fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefGBps))
	}
	if err := t2.Write(os.Stdout); err != nil {
		return err
	}

	e3, err := experiments.ExtPipeline(opt)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := printCurveTable("Extension E3: pipelined store-and-forward (paper future work)",
		"size", e3.Direct, e3.PlainK2, e3.PipedK2, e3.PipedK4); err != nil {
		return err
	}

	e4, err := experiments.ExtValidation(opt)
	if err != nil {
		return err
	}
	t4 := stats.Table{
		Title:   "\nExtension E4: flow-level vs packet-level model agreement",
		Headers: []string{"scenario", "size", "flow (GB/s)", "packet (GB/s)", "diff"},
	}
	for _, r := range e4.Rows {
		t4.AddRow(r.Scenario, stats.HumanBytes(r.Bytes),
			fmt.Sprintf("%.3f", r.FlowGBps), fmt.Sprintf("%.3f", r.PacketGBps),
			fmt.Sprintf("%.1f%%", r.DiffPct))
	}
	if err := t4.Write(os.Stdout); err != nil {
		return err
	}

	e5, err := experiments.ExtInsitu(opt)
	if err != nil {
		return err
	}
	t5 := stats.Table{
		Title:   "\nExtension E5: bursts from real in-situ threshold analysis (field substrate)",
		Headers: []string{"cores", "burst (GB)", "ranks w/ data", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e5.Rows {
		t5.AddRow(fmt.Sprint(r.Cores), fmt.Sprintf("%.1f", r.BurstGB),
			fmt.Sprintf("%.0f%%", r.RanksWithData*100),
			fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefaultGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefaultGBps))
	}
	return t5.Write(os.Stdout)
}
