// Command bgqbench regenerates every data figure of the paper's
// evaluation (Figs. 5-11) plus the ablations in DESIGN.md, printing each
// as a text table.
//
// Usage:
//
//	bgqbench [-run fig5|fig6|fig7|fig8|fig9|fig10|fig11|r1|ablations|extensions|scale|topo|all]
//	         [-quick] [-parallel N] [-engine incremental|global]
//	         [-json out.json] [-compare prev.json]
//	         [-obs-trace f] [-metrics f] [-check]
//	         [-cpuprofile f] [-memprofile f] [-trace f]
//
// -quick trims the sweeps (fewer message sizes, smaller top scale) for a
// fast smoke run; the default regenerates the full figures. -parallel
// bounds the worker pool used to evaluate independent sweep points (0
// means one per CPU; results are identical at any setting). -json writes
// a machine-readable report — per-experiment wall time, simulated
// seconds, allocation totals, and the rendered rows — and -compare
// prints a one-line wall-time comparison against a previous report.
//
// -obs-trace records the run's simulation-time spans (proxy legs,
// recovery waves, replans) into a Chrome trace-event JSON file loadable
// at ui.perfetto.dev; -metrics writes the observability registry's
// counters and histograms as a flat JSON snapshot. Both also embed a
// metrics summary in the -json report. The observability hooks are
// currently wired through the r1 runner.
//
// -engine selects the netsim rate-update strategy for every engine the
// runners build: the default incremental waterfill or the global
// full-sweep oracle (DESIGN.md §13). Combined with -check this audits
// the incremental engine live; combined with -run scale it measures the
// two strategies head to head on the full-Mira scenario.
//
// -check attaches an invariant auditor (internal/check) to every engine
// the runners build: per-sweep capacity and rate-cap checks plus
// end-of-run byte conservation. Each experiment prints a one-line audit
// summary and the process exits non-zero if any violation was found.
// Because the auditor claims each engine's observability sink, -check
// cannot be combined with -obs-trace or -metrics. Flags are validated
// up front: an unknown -run name, a negative -parallel, an unreadable
// -compare file, or a conflicting combination exits 2 with a one-line
// error before any experiment runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"sync"
	"time"

	"bgqflow/internal/check"
	"bgqflow/internal/experiments"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/stats"
)

// expReport is one experiment's entry in the -json report.
type expReport struct {
	Name       string   `json:"name"`
	WallMS     float64  `json:"wall_ms"`
	SimSeconds float64  `json:"sim_seconds"`
	AllocBytes uint64   `json:"alloc_bytes"`
	Allocs     uint64   `json:"allocs"`
	Rows       []string `json:"rows"`
}

// report is the -json output: enough to track the bench trajectory from
// run to run (see scripts/bench.sh).
type report struct {
	Date        string      `json:"date"`
	Quick       bool        `json:"quick"`
	Parallel    int         `json:"parallel"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Experiments []expReport `json:"experiments"`
	// Metrics is the observability registry snapshot, present when
	// -obs-trace or -metrics was given.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// runners maps experiment names to their printers, in run order; it is
// the single source of truth for the names -run accepts.
var runners = []struct {
	name string
	fn   func(io.Writer, experiments.Options) error
}{
	{"fig5", printFig5},
	{"fig6", printFig6},
	{"fig7", printFig7},
	{"fig8", printFig8},
	{"fig9", printFig9},
	{"fig10", printFig10},
	{"fig11", printFig11},
	{"r1", printR1},
	{"ablations", printAblations},
	{"extensions", printExtensions},
	{"scale", printScale},
	{"topo", printTopo},
}

// validateFlags rejects bad flags before any experiment runs, so a long
// sweep never dies halfway through on a typo. Returned errors are
// printed as a single line and exit with status 2.
func validateFlags(selected []string, parallel int, engine string, checkOn bool, obsTrace, metricsOut, compare string) error {
	known := make([]string, 0, len(runners)+1)
	for _, r := range runners {
		known = append(known, r.name)
	}
	known = append(known, "all")
	for _, name := range selected {
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", parallel)
	}
	if engine != "incremental" && engine != "global" {
		return fmt.Errorf("-engine must be incremental or global, got %q", engine)
	}
	if checkOn && (obsTrace != "" || metricsOut != "") {
		return fmt.Errorf("-check cannot be combined with -obs-trace or -metrics: the invariant auditor claims each engine's observability sink")
	}
	if compare != "" {
		f, err := os.Open(compare)
		if err != nil {
			return fmt.Errorf("compare: %v", err)
		}
		f.Close()
	}
	return nil
}

// checkCollector accumulates the invariant auditors the -check hook
// attaches to every engine a runner builds, and drains them (running
// their end-of-run checks) once the runner returns. Runners build
// engines from parallel sweep workers, so attach is locked.
type checkCollector struct {
	mu       sync.Mutex
	auditors []*check.Auditor
}

func (c *checkCollector) attach(e *netsim.Engine) {
	a := check.NewAuditor(e)
	c.mu.Lock()
	c.auditors = append(c.auditors, a)
	c.mu.Unlock()
}

// drain finishes every auditor attached since the last drain, returning
// the number of engines audited and any violations found.
func (c *checkCollector) drain() (engines int, viols []check.Violation) {
	c.mu.Lock()
	auditors := c.auditors
	c.auditors = nil
	c.mu.Unlock()
	for _, a := range auditors {
		viols = append(viols, a.Finish()...)
	}
	return len(auditors), viols
}

func main() {
	run := flag.String("run", "all", "which experiment to run: fig5..fig11, r1, ablations, extensions, or all")
	mode := flag.String("mode", "", "alias for -run (e.g. -mode r1)")
	quick := flag.Bool("quick", false, "trimmed sweeps for a fast smoke run")
	parallel := flag.Int("parallel", 0, "sweep-point workers; 0 = one per CPU, 1 = sequential (same results either way)")
	jsonOut := flag.String("json", "", "write a machine-readable run report to this file")
	compare := flag.String("compare", "", "previous -json report to print a wall-time comparison against")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	obsTrace := flag.String("obs-trace", "", "write the run's simulation-time spans as Chrome trace-event JSON (ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "write the observability metrics registry as a JSON snapshot")
	checkOn := flag.Bool("check", false, "attach invariant auditors (internal/check) to every engine; exit non-zero on any violation")
	engine := flag.String("engine", "incremental", "netsim sweep strategy: incremental (default) or global (the full-sweep oracle)")
	flag.Parse()

	if *mode != "" {
		run = mode
	}
	selected := strings.Split(*run, ",")
	if err := validateFlags(selected, *parallel, *engine, *checkOn, *obsTrace, *metricsOut, *compare); err != nil {
		fmt.Fprintf(os.Stderr, "bgqbench: %v\n", err)
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	opt.Quick = *quick
	opt.Parallel = *parallel
	if *obsTrace != "" || *metricsOut != "" {
		opt.Obs = obs.NewRecorder()
	}
	var checker *checkCollector
	if *checkOn {
		checker = &checkCollector{}
		opt.EngineHook = checker.attach
	}
	if *engine == "global" {
		// Compose ahead of the checker hook: SetSweepMode must run before
		// any flow is submitted, and the auditor only observes.
		base := opt.EngineHook
		opt.EngineHook = func(e *netsim.Engine) {
			e.SetSweepMode(netsim.SweepGlobal)
			if base != nil {
				base(e)
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatal("trace: %v", err)
		}
		defer trace.Stop()
	}

	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	rep := report{
		Date:       time.Now().Format(time.RFC3339),
		Quick:      *quick,
		Parallel:   *parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	any := false
	violations := 0
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		any = true
		var buf strings.Builder
		out := io.Writer(os.Stdout)
		if *jsonOut != "" {
			out = io.MultiWriter(os.Stdout, &buf)
		}
		experiments.ResetSimTime()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := r.fn(out, opt); err != nil {
			fatal("%s: %v", r.name, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		fmt.Printf("[%s completed in %v]\n\n", r.name, wall.Round(time.Millisecond))
		rep.TotalWallMS += float64(wall) / float64(time.Millisecond)
		rep.Experiments = append(rep.Experiments, expReport{
			Name:       r.name,
			WallMS:     float64(wall) / float64(time.Millisecond),
			SimSeconds: experiments.SimTime(),
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Allocs:     after.Mallocs - before.Mallocs,
			Rows:       splitRows(buf.String()),
		})
		if checker != nil {
			engines, viols := checker.drain()
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "bgqbench: check: %s: %s\n", r.name, v)
			}
			fmt.Printf("[%s check: %d engines audited, %d violations]\n\n", r.name, engines, len(viols))
			violations += len(viols)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "bgqbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
	if violations > 0 {
		fatal("check: %d invariant violations", violations)
	}

	if opt.Obs != nil {
		snap := opt.Obs.Registry().Snapshot()
		rep.Metrics = &snap
		if *obsTrace != "" {
			if err := writeObsTrace(*obsTrace, opt.Obs); err != nil {
				fatal("obs-trace: %v", err)
			}
			fmt.Printf("wrote %d spans to %s (open at ui.perfetto.dev)\n", len(opt.Obs.Spans()), *obsTrace)
		}
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, snap); err != nil {
				fatal("metrics: %v", err)
			}
		}
	}

	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			fatal("json: %v", err)
		}
	}
	if *compare != "" {
		line, err := compareLine(*compare, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bgqbench: compare: %v\n", err)
		} else {
			fmt.Println(line)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("memprofile: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bgqbench: "+format+"\n", args...)
	os.Exit(1)
}

// splitRows turns captured table text into trimmed, non-empty lines.
func splitRows(s string) []string {
	var rows []string
	for _, line := range strings.Split(s, "\n") {
		if line = strings.TrimRight(line, " "); line != "" {
			rows = append(rows, line)
		}
	}
	return rows
}

// writeObsTrace dumps the recorder as Chrome trace-event JSON.
func writeObsTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps a registry snapshot as flat JSON.
func writeMetrics(path string, snap obs.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeReport(path string, rep report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compareLine renders a one-line wall-time comparison against a previous
// report, matching experiments by name.
func compareLine(prevPath string, cur report) (string, error) {
	b, err := os.ReadFile(prevPath)
	if err != nil {
		return "", err
	}
	var prev report
	if err := json.Unmarshal(b, &prev); err != nil {
		return "", fmt.Errorf("%s: %w", prevPath, err)
	}
	prevByName := make(map[string]float64, len(prev.Experiments))
	for _, e := range prev.Experiments {
		prevByName[e.Name] = e.WallMS
	}
	var prevTotal, curTotal float64
	matched := 0
	for _, e := range cur.Experiments {
		if p, ok := prevByName[e.Name]; ok {
			prevTotal += p
			curTotal += e.WallMS
			matched++
		}
	}
	if matched == 0 {
		return "", fmt.Errorf("%s: no experiments in common", prevPath)
	}
	return fmt.Sprintf("bench: %d experiments, %.0f ms now vs %.0f ms in %s (%.2fx)",
		matched, curTotal, prevTotal, prev.Date, prevTotal/curTotal), nil
}

func printCurveTable(w io.Writer, title, xlabel string, curves ...experiments.Curve) error {
	t := stats.Table{Title: title, Headers: []string{xlabel}}
	for _, c := range curves {
		t.Headers = append(t.Headers, c.Name+" (GB/s)")
	}
	for i := range curves[0].Points {
		row := []string{stats.HumanBytes(curves[0].Points[i].Bytes)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.3f", c.Points[i].GBps))
		}
		t.AddRow(row...)
	}
	return t.Write(w)
}

func printFig5(w io.Writer, opt experiments.Options) error {
	res, err := experiments.Fig5(opt)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig. 5: point-to-point PUT throughput with and w/o proxies in %v", res.Shape)
	if err := printCurveTable(w, title, "size", res.Direct, res.Proxied); err != nil {
		return err
	}
	fmt.Fprintf(w, "crossover (proxied first wins): %s\n", stats.HumanBytes(res.Crossover))
	return nil
}

func printFig6(w io.Writer, opt experiments.Options) error {
	res, err := experiments.Fig6(opt)
	if err != nil {
		return err
	}
	names := make([]string, len(res.Groups))
	for i, g := range res.Groups {
		names[i] = g.String()
	}
	title := fmt.Sprintf("Fig. 6: group-to-group PUT throughput, 2x256 nodes in %v (proxy groups: %s)",
		res.Shape, strings.Join(names, " "))
	if err := printCurveTable(w, title, "size", res.Direct, res.Proxied); err != nil {
		return err
	}
	fmt.Fprintf(w, "crossover (proxied first wins): %s\n", stats.HumanBytes(res.Crossover))
	return nil
}

func printFig7(w io.Writer, opt experiments.Options) error {
	res, err := experiments.Fig7(opt)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Fig. 7: throughput vs number of proxy groups, 2x32 nodes in %v", res.Shape)
	return printCurveTable(w, title, "size", res.Curves...)
}

func printFig8(w io.Writer, _ experiments.Options) error {
	fmt.Fprintln(w, "Fig. 8: Pattern 1 histogram (1,024 ranks, uniform 0-8MB)")
	fmt.Fprint(w, experiments.Fig8(1).String())
	return nil
}

func printFig9(w io.Writer, _ experiments.Options) error {
	fmt.Fprintln(w, "Fig. 9: Pattern 2 histogram (1,024 ranks, Pareto 0-8MB)")
	fmt.Fprint(w, experiments.Fig9(1).String())
	return nil
}

func printScaleTable(w io.Writer, title string, curves ...experiments.ScaleCurve) error {
	t := stats.Table{Title: title, Headers: []string{"cores"}}
	for _, c := range curves {
		t.Headers = append(t.Headers, c.Name+" (GB/s)")
	}
	for i := range curves[0].Points {
		row := []string{fmt.Sprint(curves[0].Points[i].Cores)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.3f", c.Points[i].GBps))
		}
		t.AddRow(row...)
	}
	return t.Write(w)
}

func printFig10(w io.Writer, opt experiments.Options) error {
	res, err := experiments.Fig10(opt)
	if err != nil {
		return err
	}
	return printScaleTable(w, "Fig. 10: aggregation throughput to ION /dev/null (weak scaling)",
		res.OursP1, res.OursP2, res.DefaultP1, res.DefaultP2)
}

func printFig11(w io.Writer, opt experiments.Options) error {
	res, err := experiments.Fig11(opt)
	if err != nil {
		return err
	}
	if err := printScaleTable(w, "Fig. 11: HACC I/O write throughput to ION /dev/null",
		res.Ours, res.Default); err != nil {
		return err
	}
	for i, gb := range res.BurstGB {
		fmt.Fprintf(w, "  burst at %d cores: %.1f GB\n", res.Ours.Points[i].Cores, gb)
	}
	return nil
}

func printR1(w io.Writer, opt experiments.Options) error {
	res, err := experiments.R1(opt)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title: fmt.Sprintf("R1: resilience under targeted link failures, %s transfer in %v (seed %d)",
			stats.HumanBytes(res.Bytes), res.Shape, res.Seed),
		Headers: []string{"failed links",
			"direct done", "direct (GB/s)",
			"proxy done", "proxy (GB/s)",
			"recovery done", "recovery (GB/s)", "replans"},
	}
	pct := func(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
	for _, pt := range res.Points {
		t.AddRow(fmt.Sprint(pt.FailedLinks),
			pct(pt.Direct.DeliveredFrac), fmt.Sprintf("%.3f", pt.Direct.GBps),
			pct(pt.ProxyNoRec.DeliveredFrac), fmt.Sprintf("%.3f", pt.ProxyNoRec.GBps),
			pct(pt.ProxyRec.DeliveredFrac), fmt.Sprintf("%.3f", pt.ProxyRec.GBps),
			fmt.Sprint(pt.ProxyRec.Replans))
	}
	return t.Write(w)
}

func printAblations(w io.Writer, opt experiments.Options) error {
	a1, err := experiments.AblationThreshold(opt)
	if err != nil {
		return err
	}
	if err := printCurveTable(w, "Ablation A1: gain over direct vs message size per proxy count (Eq. 5 check)",
		"size", a1.Curves...); err != nil {
		return err
	}

	a2, err := experiments.AblationPlacement(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAblation A2: placement at %s: direct %.2f GB/s, link-disjoint (%d proxies) %.2f GB/s, naive random %.2f GB/s\n",
		stats.HumanBytes(a2.Bytes), a2.DirectGBps, a2.DisjointProxies, a2.DisjointGBps, a2.NaiveGBps)

	a3, err := experiments.AblationAggCount(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAblation A3: aggregator count at %d cores (%.1f GB burst): dynamic (%d/pset) %.2f GB/s",
		a3.Cores, a3.BurstGB, a3.DynamicPerPset, a3.DynamicGBps)
	for _, f := range a3.Fixed {
		fmt.Fprintf(w, ", fixed %d/pset %.2f GB/s", f.PerPset, f.GBps)
	}
	fmt.Fprintln(w)

	a4, err := experiments.AblationZones(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAblation A4: %d concurrent %s messages between one pair, per routing zone:\n",
		a4.Messages, stats.HumanBytes(a4.Bytes))
	for _, z := range a4.PerZone {
		fmt.Fprintf(w, "  %-28s %.2f GB/s\n", z.Zone, z.GBps)
	}

	a5, err := experiments.AblationRoundSync(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAblation A5: collective I/O round synchronization at %d cores: synced %.2f GB/s, unsynced %.2f GB/s, ours %.2f GB/s\n",
		a5.Cores, a5.SyncedGBps, a5.UnsyncedGBps, a5.OursGBps)
	return nil
}

func printExtensions(w io.Writer, opt experiments.Options) error {
	e1, err := experiments.ExtStorage(opt)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:   fmt.Sprintf("Extension E1: storage tier behind the IONs (%d cores, %.0f GB Pattern 1 burst)", e1.Cores, e1.BurstGB),
		Headers: []string{"sink", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e1.Rows {
		t.AddRow(r.Sink, fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefaultGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefaultGBps))
	}
	if err := t.Write(w); err != nil {
		return err
	}

	e2, err := experiments.ExtMapping(opt)
	if err != nil {
		return err
	}
	t2 := stats.Table{
		Title:   fmt.Sprintf("\nExtension E2: rank-mapping sensitivity (HACC burst, %d cores)", e2.Cores),
		Headers: []string{"mapping", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e2.Rows {
		t2.AddRow(r.Mapping, fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefGBps))
	}
	if err := t2.Write(w); err != nil {
		return err
	}

	e3, err := experiments.ExtPipeline(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := printCurveTable(w, "Extension E3: pipelined store-and-forward (paper future work)",
		"size", e3.Direct, e3.PlainK2, e3.PipedK2, e3.PipedK4); err != nil {
		return err
	}

	e4, err := experiments.ExtValidation(opt)
	if err != nil {
		return err
	}
	t4 := stats.Table{
		Title:   "\nExtension E4: flow-level vs packet-level model agreement",
		Headers: []string{"scenario", "size", "flow (GB/s)", "packet (GB/s)", "diff"},
	}
	for _, r := range e4.Rows {
		t4.AddRow(r.Scenario, stats.HumanBytes(r.Bytes),
			fmt.Sprintf("%.3f", r.FlowGBps), fmt.Sprintf("%.3f", r.PacketGBps),
			fmt.Sprintf("%.1f%%", r.DiffPct))
	}
	if err := t4.Write(w); err != nil {
		return err
	}

	e5, err := experiments.ExtInsitu(opt)
	if err != nil {
		return err
	}
	t5 := stats.Table{
		Title:   "\nExtension E5: bursts from real in-situ threshold analysis (field substrate)",
		Headers: []string{"cores", "burst (GB)", "ranks w/ data", "ours (GB/s)", "default (GB/s)", "gain"},
	}
	for _, r := range e5.Rows {
		t5.AddRow(fmt.Sprint(r.Cores), fmt.Sprintf("%.1f", r.BurstGB),
			fmt.Sprintf("%.0f%%", r.RanksWithData*100),
			fmt.Sprintf("%.2f", r.OursGBps), fmt.Sprintf("%.2f", r.DefaultGBps),
			fmt.Sprintf("%.2fx", r.OursGBps/r.DefaultGBps))
	}
	return t5.Write(w)
}

func printTopo(w io.Writer, opt experiments.Options) error {
	res, err := experiments.TopoCompare(opt)
	if err != nil {
		return err
	}
	curves := make([]experiments.Curve, len(res.Fabrics))
	for i, f := range res.Fabrics {
		curves[i] = f.Curve
	}
	if err := printCurveTable(w, "Topology comparison: corner-to-corner direct PUT throughput", "size", curves...); err != nil {
		return err
	}
	for _, f := range res.Fabrics {
		fmt.Fprintf(w, "%-18s %d nodes, %d-hop measured route\n", f.Spec, f.Nodes, f.Hops)
	}
	return nil
}

func printScale(w io.Writer, opt experiments.Options) error {
	res, err := experiments.ScaleSparse(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Scale: full-machine sparse exchange in %v (%d nodes, %d ranks)\n",
		res.Shape, res.Nodes, res.Ranks)
	fmt.Fprintf(w, "  flows: %d done, %d aborted (fault campaign)\n", res.Done, res.Aborted)
	fmt.Fprintf(w, "  volume: %.1f GB in %.1f ms simulated (%.1f GB/s aggregate)\n",
		res.TotalGB, res.SimSeconds*1e3, res.GBps)
	fmt.Fprintf(w, "  sweeps: %d incremental, %d full\n", res.IncSweeps, res.FullSweeps)
	return nil
}
