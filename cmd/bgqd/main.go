// Command bgqd is the plan-serving daemon: a long-running service that
// answers point-to-point, group, aggregation, and full-scenario planning
// requests over HTTP/JSON, on a TCP port or a Unix socket.
//
// Usage:
//
//	bgqd [-listen host:port | -socket /path/bgqd.sock]
//	     [-workers N] [-queue N] [-shards N] [-retry-after dur]
//
// The daemon runs a fixed worker pool behind a bounded admission queue:
// when the queue is full new requests are shed with 429 + Retry-After
// instead of queueing without bound. Identical concurrent requests are
// coalesced onto one computation and completed plans are cached until a
// fault event (POST /v1/fault) bumps the invalidation epoch. GET
// /metrics exposes the observability registry (latency histograms,
// queue depth, cache hit/miss/coalesce counters, shed count) as JSON.
//
// Flags are validated up front; a bad flag exits 2 with a one-line
// error. SIGINT/SIGTERM shut the daemon down gracefully (in-flight
// requests finish, the socket file is removed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgqflow/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8347", "TCP listen address (host:port)")
	socket := flag.String("socket", "", "Unix socket path to serve on instead of TCP")
	workers := flag.Int("workers", 0, "plan-computation workers; 0 = one per CPU")
	queue := flag.Int("queue", 0, "admission queue depth; 0 = 4x workers")
	shards := flag.Int("shards", 0, "plan-cache shards; 0 = 16")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	flag.Parse()

	if err := validate(*listen, *socket, *workers, *queue, *shards, *retryAfter, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "bgqd: %v\n", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		CacheShards: *shards,
		RetryAfter:  *retryAfter,
	})
	defer srv.Close()

	var (
		ln   net.Listener
		addr string
		err  error
	)
	if *socket != "" {
		// A stale socket file from a crashed daemon would fail the bind;
		// remove it only if nothing is listening there.
		if conn, derr := net.DialTimeout("unix", *socket, 200*time.Millisecond); derr == nil {
			conn.Close()
			fmt.Fprintf(os.Stderr, "bgqd: socket %s is already in use\n", *socket)
			os.Exit(1)
		}
		os.Remove(*socket)
		ln, err = net.Listen("unix", *socket)
		addr = "unix://" + *socket
		if err == nil {
			defer os.Remove(*socket)
		}
	} else {
		ln, err = net.Listen("tcp", *listen)
		if ln != nil {
			addr = ln.Addr().String()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgqd: listen: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("bgqd: serving on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "bgqd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "bgqd: shutdown: %v\n", err)
			os.Exit(1)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "bgqd: serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// validate rejects bad flags before the daemon binds anything; errors
// print as one line and exit 2, matching bgqbench and bgqsim.
func validate(listen, socket string, workers, queue, shards int, retryAfter time.Duration, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments: %v", extra)
	}
	if socket == "" {
		if listen == "" {
			return fmt.Errorf("one of -listen or -socket is required")
		}
		if _, _, err := net.SplitHostPort(listen); err != nil {
			return fmt.Errorf("-listen %q: %v", listen, err)
		}
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if queue < 0 {
		return fmt.Errorf("-queue must be >= 0, got %d", queue)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if retryAfter < 0 {
		return fmt.Errorf("-retry-after must be >= 0, got %v", retryAfter)
	}
	return nil
}
