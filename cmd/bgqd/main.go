// Command bgqd is the plan-serving daemon: a long-running service that
// answers point-to-point, group, aggregation, and full-scenario planning
// requests over HTTP/JSON, on a TCP port or a Unix socket.
//
// Usage:
//
//	bgqd [-listen host:port | -socket /path/bgqd.sock]
//	     [-workers N] [-queue N] [-shards N] [-retry-after dur]
//	     [-max-sessions N] [-session-idle dur] [-replay-events N]
//	     [-batch-window dur] [-drain-timeout dur]
//	     [-trace-events N] [-stats-window dur]
//	     [-slo-plan-p99 dur] [-slo-shed-ratio f] [-slo-resume-success f]
//	     [-replica-id ID -peers addr,addr [-gossip-interval dur] [-gossip-seed N]]
//
// The daemon runs a fixed worker pool behind a bounded admission queue:
// when the queue is full new requests are shed with 429 + Retry-After
// instead of queueing without bound. Identical concurrent requests are
// coalesced onto one computation and completed plans are cached until a
// fault event (POST /v1/fault) bumps the invalidation epoch. GET
// /metrics exposes the observability registry (latency histograms,
// queue depth, cache hit/miss/coalesce counters, shed count) as JSON.
//
// POST /v1/transfer runs long-lived resilient transfer sessions that
// stream progress frames and survive client disconnects; -max-sessions
// caps them, -session-idle reaps abandoned ones, -replay-events bounds
// each session's reconnect replay ring, and -batch-window enables
// Träff-style combining of small same-pair transfers.
//
// Telemetry plane: -trace-events keeps a bounded ring of wall-clock
// request/session spans served as a Perfetto trace on GET /v1/trace
// (0 disables tracing entirely); GET /metrics?format=prom serves the
// registry — including the rolling-window latency/shed/resume metrics
// over -stats-window — as Prometheus text. The -slo-* flags declare
// objectives evaluated over that window and served on GET /v1/slo:
// -slo-plan-p99 caps the windowed plan p99, -slo-shed-ratio caps
// shed/requests, -slo-resume-success floors resume_hits/resumes
// (negative ratio = objective off). Soak drivers gate on the
// cumulative breach counters.
//
// Cluster mode: -replica-id names this daemon as one replica of a bgqd
// cluster and -peers lists the other replicas' addresses (TCP or unix
// socket forms, comma-separated). Fault events then enter a gossiped,
// versioned epoch log instead of a private fault set: every replica
// that has applied the same events plans against the same faults, POST
// /v1/gossip is the peer wire, GET /v1/cluster the observability view,
// and plans stamped with an X-Bgq-Min-Vector the replica has not caught
// up to are rejected 503 rather than served stale. -gossip-interval
// paces the anti-entropy rounds that repair lost broadcasts.
//
// Flags are validated up front; a bad flag exits 2 with a one-line
// error. SIGINT/SIGTERM shut the daemon down gracefully: new sessions
// are refused while in-flight ones run to completion under
// -drain-timeout; sessions still running at the deadline are aborted at
// their next safe point and the daemon exits 1 so supervisors can see
// the drain was not clean. In-flight plan requests finish and the
// socket file is removed either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bgqflow/internal/obs"
	"bgqflow/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8347", "TCP listen address (host:port)")
	socket := flag.String("socket", "", "Unix socket path to serve on instead of TCP")
	workers := flag.Int("workers", 0, "plan-computation workers; 0 = one per CPU")
	queue := flag.Int("queue", 0, "admission queue depth; 0 = 4x workers")
	shards := flag.Int("shards", 0, "plan-cache shards; 0 = 16")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	maxSessions := flag.Int("max-sessions", 0, "concurrent transfer-session cap; 0 = 4096")
	sessionIdle := flag.Duration("session-idle", 0, "reap sessions with no subscriber or heartbeat for this long; 0 = 60s")
	replayEvents := flag.Int("replay-events", 0, "per-session reconnect replay ring size; 0 = 256")
	batchWindow := flag.Duration("batch-window", 0, "combine small same-pair Batch transfers arriving within this window; 0 disables")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight sessions before they are aborted")
	traceEvents := flag.Int("trace-events", 65536, "wall-clock trace ring size served on /v1/trace; 0 disables tracing")
	statsWindow := flag.Duration("stats-window", 30*time.Second, "rolling window for windowed metrics and SLO evaluation")
	sloPlanP99 := flag.Duration("slo-plan-p99", 0, "SLO: windowed plan p99 must stay under this; 0 disables")
	sloShedRatio := flag.Float64("slo-shed-ratio", -1, "SLO: windowed shed/requests must stay under this ratio; negative disables")
	sloResume := flag.Float64("slo-resume-success", -1, "SLO: windowed resume_hits/resumes must stay at or above this ratio; negative disables")
	replicaID := flag.String("replica-id", "", "cluster replica ID; enables the gossiped fault-epoch plane (needs -peers)")
	peers := flag.String("peers", "", "comma-separated peer replica addresses (host:port or unix:///path)")
	gossipInterval := flag.Duration("gossip-interval", 0, "anti-entropy gossip round interval; 0 = 200ms")
	gossipSeed := flag.Int64("gossip-seed", 0, "gossip peer-selection seed (for reproducible soaks)")
	flag.Parse()

	if err := validate(*listen, *socket, *workers, *queue, *shards, *retryAfter,
		*maxSessions, *sessionIdle, *replayEvents, *batchWindow, *drainTimeout, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "bgqd: %v\n", err)
		os.Exit(2)
	}
	peerList, perr := validateCluster(*replicaID, *peers, *gossipInterval)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "bgqd: %v\n", perr)
		os.Exit(2)
	}
	slos, serr := buildSLOs(*traceEvents, *statsWindow, *sloPlanP99, *sloShedRatio, *sloResume)
	if serr != nil {
		fmt.Fprintf(os.Stderr, "bgqd: %v\n", serr)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheShards:    *shards,
		RetryAfter:     *retryAfter,
		MaxSessions:    *maxSessions,
		SessionIdle:    *sessionIdle,
		ReplayEvents:   *replayEvents,
		BatchWindow:    *batchWindow,
		TraceEvents:    *traceEvents,
		StatsWindow:    *statsWindow,
		SLOs:           slos,
		ReplicaID:      *replicaID,
		Peers:          peerList,
		GossipInterval: *gossipInterval,
		GossipSeed:     *gossipSeed,
	})
	defer srv.Close()

	var (
		ln   net.Listener
		addr string
		err  error
	)
	if *socket != "" {
		// A stale socket file from a crashed daemon would fail the bind;
		// remove it only if nothing is listening there.
		if conn, derr := net.DialTimeout("unix", *socket, 200*time.Millisecond); derr == nil {
			conn.Close()
			fmt.Fprintf(os.Stderr, "bgqd: socket %s is already in use\n", *socket)
			os.Exit(1)
		}
		os.Remove(*socket)
		ln, err = net.Listen("unix", *socket)
		addr = "unix://" + *socket
		if err == nil {
			defer os.Remove(*socket)
		}
	} else {
		ln, err = net.Listen("tcp", *listen)
		if ln != nil {
			addr = ln.Addr().String()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgqd: listen: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("bgqd: serving on %s\n", addr)
	if *replicaID != "" {
		gi := *gossipInterval
		if gi == 0 {
			gi = 200 * time.Millisecond // serve.Config's default
		}
		fmt.Printf("bgqd: cluster replica %s, %d peers, gossip every %v\n",
			*replicaID, len(peerList), gi)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Sessions drain before the HTTP server shuts down: streaming
		// subscribers hold their connections until the session delivers a
		// report frame, so Shutdown would otherwise hang on them.
		fmt.Fprintf(os.Stderr, "bgqd: draining sessions (timeout %v)\n", *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		res := srv.Drain(drainCtx)
		cancelDrain()
		fmt.Fprintf(os.Stderr, "bgqd: drain: %d sessions finished, %d aborted in %.0fms\n",
			res.Drained, res.Aborted, res.ElapsedMS)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "bgqd: shutdown: %v\n", err)
			os.Exit(1)
		}
		if res.Aborted > 0 {
			// A dirty drain exits nonzero so supervisors and soak scripts
			// can tell "every session finished" from "clients must re-arm".
			if *socket != "" {
				os.Remove(*socket)
			}
			os.Exit(1)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "bgqd: serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// validate rejects bad flags before the daemon binds anything; errors
// print as one line and exit 2, matching bgqbench and bgqsim.
func validate(listen, socket string, workers, queue, shards int, retryAfter time.Duration,
	maxSessions int, sessionIdle time.Duration, replayEvents int, batchWindow, drainTimeout time.Duration, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments: %v", extra)
	}
	if socket == "" {
		if listen == "" {
			return fmt.Errorf("one of -listen or -socket is required")
		}
		if _, _, err := net.SplitHostPort(listen); err != nil {
			return fmt.Errorf("-listen %q: %v", listen, err)
		}
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if queue < 0 {
		return fmt.Errorf("-queue must be >= 0, got %d", queue)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if retryAfter < 0 {
		return fmt.Errorf("-retry-after must be >= 0, got %v", retryAfter)
	}
	if maxSessions < 0 {
		return fmt.Errorf("-max-sessions must be >= 0, got %d", maxSessions)
	}
	if sessionIdle < 0 {
		return fmt.Errorf("-session-idle must be >= 0, got %v", sessionIdle)
	}
	if replayEvents < 0 {
		return fmt.Errorf("-replay-events must be >= 0, got %d", replayEvents)
	}
	if batchWindow < 0 {
		return fmt.Errorf("-batch-window must be >= 0, got %v", batchWindow)
	}
	if drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0, got %v", drainTimeout)
	}
	return nil
}

// validateCluster checks the cluster flags and splits the peer list.
// A replica without peers is a cluster of one (legal — the soak
// scripts start replicas before their peers are up); peers without a
// replica ID is a misconfiguration.
func validateCluster(replicaID, peers string, gossipInterval time.Duration) ([]string, error) {
	if gossipInterval < 0 {
		return nil, fmt.Errorf("-gossip-interval must be >= 0, got %v", gossipInterval)
	}
	if peers != "" && replicaID == "" {
		return nil, fmt.Errorf("-peers needs -replica-id")
	}
	if peers == "" {
		return nil, nil
	}
	var list []string
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-peers has an empty entry")
		}
		list = append(list, p)
	}
	return list, nil
}

// buildSLOs validates the telemetry flags and assembles the daemon's
// objective list. The metric names here are the windowed metrics the
// serve layer registers at startup, so a spec can never point at a
// metric that does not exist.
func buildSLOs(traceEvents int, statsWindow, planP99 time.Duration, shedRatio, resumeSuccess float64) ([]obs.SLOSpec, error) {
	if traceEvents < 0 {
		return nil, fmt.Errorf("-trace-events must be >= 0, got %d", traceEvents)
	}
	if statsWindow <= 0 {
		return nil, fmt.Errorf("-stats-window must be > 0, got %v", statsWindow)
	}
	if planP99 < 0 {
		return nil, fmt.Errorf("-slo-plan-p99 must be >= 0, got %v", planP99)
	}
	if shedRatio > 1 {
		return nil, fmt.Errorf("-slo-shed-ratio must be <= 1, got %g", shedRatio)
	}
	if resumeSuccess > 1 {
		return nil, fmt.Errorf("-slo-resume-success must be <= 1, got %g", resumeSuccess)
	}
	var slos []obs.SLOSpec
	if planP99 > 0 {
		slos = append(slos, obs.SLOSpec{
			Name: "plan_p99", Kind: obs.SLOLatencyP99,
			Metric:    "serve/window/plan_latency_ms",
			Threshold: float64(planP99) / 1e6,
		})
	}
	if shedRatio >= 0 {
		slos = append(slos, obs.SLOSpec{
			Name: "shed_ratio", Kind: obs.SLORatioMax,
			Metric: "serve/window/shed", Denominator: "serve/window/requests",
			Threshold: shedRatio,
		})
	}
	if resumeSuccess >= 0 {
		slos = append(slos, obs.SLOSpec{
			Name: "resume_success", Kind: obs.SLORatioMin,
			Metric: "serve/window/resume_hits", Denominator: "serve/window/resumes",
			Threshold: resumeSuccess,
		})
	}
	return slos, nil
}
