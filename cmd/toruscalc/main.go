// Command toruscalc inspects BG/Q torus geometries: routes between
// nodes, pset and bridge layout, and the proxies the multipath planner
// would select for a pair.
//
// Usage:
//
//	toruscalc -shape 2x2x4x4x2 route 0 127
//	toruscalc -shape 4x4x4x16x2 psets
//	toruscalc -shape 2x2x4x4x2 proxies 0 127
//	toruscalc -shape 2x2x4x4x2 zones 0 127 1048576
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func main() {
	shapeStr := flag.String("shape", "2x2x4x4x2", "torus shape, e.g. 4x4x4x16x2")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	shape, err := torus.ParseShape(*shapeStr)
	if err != nil {
		fatal(err)
	}
	tor, err := torus.New(shape)
	if err != nil {
		fatal(err)
	}

	switch args[0] {
	case "route":
		src, dst := nodeArg(tor, args, 1), nodeArg(tor, args, 2)
		r := routing.DeterministicRoute(tor, src, dst)
		fmt.Printf("deterministic route, %d hops:\n  %s\n", r.Hops(), routing.DescribeRoute(tor, r))
	case "psets":
		p := netsim.DefaultParams()
		net := netsim.NewNetwork(tor, p.LinkBandwidth)
		ios, err := ionet.Build(net, ionet.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d nodes, %d psets, %d I/O nodes, %.1f GB/s I/O per pset\n",
			tor.Size(), ios.NumPsets(), ios.NumIONodes(), ios.PsetAggregateIOBandwidth()/1e9)
		for i := 0; i < ios.NumPsets(); i++ {
			ps := ios.Pset(i)
			fmt.Printf("  pset %d: box %v, bridges", i, ps.Box)
			for _, b := range ps.Bridges {
				fmt.Printf(" %v", tor.Coord(b))
			}
			fmt.Println()
		}
	case "proxies":
		src, dst := nodeArg(tor, args, 1), nodeArg(tor, args, 2)
		pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
		if err != nil {
			fatal(err)
		}
		proxies := pl.SelectProxies(src, dst)
		fmt.Printf("%d link-disjoint proxies for %v -> %v:\n", len(proxies), tor.Coord(src), tor.Coord(dst))
		for _, pr := range proxies {
			fmt.Printf("  %s%s proxy %v\n    leg1: %s\n    leg2: %s\n",
				pr.Dir, torus.DimNames[pr.Dim], tor.Coord(pr.Proxy),
				routing.DescribeRoute(tor, pr.Leg1), routing.DescribeRoute(tor, pr.Leg2))
		}
	case "zones":
		src, dst := nodeArg(tor, args, 1), nodeArg(tor, args, 2)
		size := int64(1 << 20)
		if len(args) > 3 {
			v, err := strconv.ParseInt(args[3], 10, 64)
			if err != nil {
				fatal(err)
			}
			size = v
		}
		z := routing.SelectZone(tor, src, dst, size)
		fmt.Printf("flexibility %d, selected %v for %d-byte messages\n",
			routing.Flexibility(tor, src, dst), z, size)
	case "groups":
		// groups <srcOrigin> <srcExtent> <dstOrigin> — boxes as comma
		// separated coordinates; destination shares the source extent.
		if len(args) < 4 {
			usage()
		}
		srcO, err := parseCoord(args[1], tor.Dims())
		if err != nil {
			fatal(err)
		}
		ext, err := parseCoord(args[2], tor.Dims())
		if err != nil {
			fatal(err)
		}
		dstO, err := parseCoord(args[3], tor.Dims())
		if err != nil {
			fatal(err)
		}
		sBox, err := torus.NewBox(tor, srcO, torus.Shape(ext))
		if err != nil {
			fatal(err)
		}
		dBox, err := torus.NewBox(tor, dstO, torus.Shape(ext))
		if err != nil {
			fatal(err)
		}
		groups := core.SelectGroupDirections(tor, sBox, dBox, 0)
		fmt.Printf("%d disjoint proxy groups for %v -> %v:", len(groups), sBox, dBox)
		for _, g := range groups {
			fmt.Printf(" %v", g)
		}
		fmt.Println()
	case "model":
		// model <src> <dst> [k]: cost-model predictions for a pair.
		src, dst := nodeArg(tor, args, 1), nodeArg(tor, args, 2)
		k := 4
		if len(args) > 3 {
			v, err := strconv.Atoi(args[3])
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad proxy count %q", args[3]))
			}
			k = v
		}
		m, err := core.NewCostModel(netsim.DefaultParams())
		if err != nil {
			fatal(err)
		}
		hops := tor.HopDistance(src, dst)
		pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
		if err != nil {
			fatal(err)
		}
		proxies := pl.SelectProxies(src, dst)
		if len(proxies) < k {
			fmt.Printf("only %d link-disjoint proxies available (asked for %d)\n", len(proxies), k)
			if len(proxies) == 0 {
				return
			}
			k = len(proxies)
		}
		h1 := proxies[0].Leg1.Hops()
		h2 := proxies[0].Leg2.Hops()
		th := m.Threshold(k, hops, h1, h2)
		fmt.Printf("pair %v -> %v: %d hops direct, k=%d proxies\n", tor.Coord(src), tor.Coord(dst), hops, k)
		if th == 0 {
			fmt.Println("model: proxies never win for this k (Eq. 5)")
			return
		}
		fmt.Printf("model threshold: %d bytes; asymptotic gain %.2fx\n", th, m.Gain(1<<33, k, hops, h1, h2))
		for _, d := range []int64{64 << 10, 1 << 20, 16 << 20, 128 << 20} {
			fmt.Printf("  %8d bytes: direct %8.1fus, %d-proxy %8.1fus (gain %.2fx)\n",
				d, m.DirectTime(d, hops).Microseconds(), k,
				m.ProxyTime(d, k, h1, h2).Microseconds(), m.Gain(d, k, hops, h1, h2))
		}
	case "map":
		// map <order> <ranksPerNode>: preview the first ranks per node.
		if len(args) < 3 {
			usage()
		}
		rpn, err := strconv.Atoi(args[2])
		if err != nil {
			fatal(err)
		}
		job, err := mpisim.NewJobWithMapping(tor, rpn, mpisim.MapOrder(args[1]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mapping %s, %d ranks:\n", job.Order(), job.NumRanks())
		limit := 32
		if job.NumRanks() < limit {
			limit = job.NumRanks()
		}
		for r := 0; r < limit; r++ {
			n := job.NodeOf(r)
			fmt.Printf("  rank %3d -> node %4d %v\n", r, n, tor.Coord(n))
		}
	default:
		usage()
	}
}

func parseCoord(s string, dims int) (torus.Coord, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dims {
		return nil, fmt.Errorf("coordinate %q needs %d components", s, dims)
	}
	c := make(torus.Coord, dims)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q", s)
		}
		c[i] = v
	}
	return c, nil
}

func nodeArg(tor *torus.Torus, args []string, i int) torus.NodeID {
	if i >= len(args) {
		usage()
	}
	v, err := strconv.Atoi(args[i])
	if err != nil || v < 0 || v >= tor.Size() {
		fatal(fmt.Errorf("bad node %q (torus has %d nodes)", args[i], tor.Size()))
	}
	return torus.NodeID(v)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: toruscalc [-shape AxBxCxDxE] <command>
commands:
  route <src> <dst>          show the deterministic route
  psets                      show pset / bridge / ION layout
  proxies <src> <dst>        show the multipath planner's proxy selection
  zones <src> <dst> [bytes]  show zone selection for a message
  model <src> <dst> [k]      cost-model threshold and gain predictions
  groups <sOrig> <ext> <dOrig>  show proxy-group selection for two boxes
                             (coordinates comma separated, e.g. 0,0,0,0,0)
  map <order> <ranksPerNode> preview a rank mapping (e.g. map TABCDE 16)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toruscalc:", err)
	os.Exit(1)
}
