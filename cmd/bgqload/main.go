// Command bgqload drives a bgqd plan-serving daemon with a seeded,
// deterministic request mix and reports latency, throughput, shed-rate,
// and coalescing statistics. It is the soak/stress driver behind
// `make soak`.
//
// Usage:
//
//	bgqload -addr host:port|unix:///path [-duration 30s] [-mode open|closed]
//	        [-rps 500] [-concurrency 8] [-seed 1] [-shape 2x2x4x4x2]
//	        [-patterns uniform,neighbor,shift,sparse] [-agg-every N]
//	        [-json out.json] [-baseline prev.json] [-p99-ratio 5]
//	        [-max-shed-rate 0.5] [-require-coalesce] [-selftest]
//	        [-trace-out trace.json] [-slo-out slo.json] [-require-slo]
//
//	bgqload -addrs r0=addr,r1=addr,r2=addr [-fault-every N]
//	        [-max-replica-share 0.8] [plan-mode flags as above]
//
//	bgqload -sessions N [-addr ... | -selftest] [-seed S] [-shape ...]
//	        [-pattern burst] [-concurrency 0] [-pace-us 500]
//	        [-campaign-every 5] [-batch-every 0] [-drop-every 4]
//	        [-fault-events 2] [-no-verify] [-session-timeout 2m]
//	        [-min-resumes N] [-min-pushed-faults N] [-json out.json]
//	        [-trace-out trace.json] [-slo-out slo.json] [-require-slo]
//
// Open-loop mode issues requests on a fixed-rate clock (-rps); closed
// loop keeps -concurrency workers saturated. The mix is deterministic in
// -seed: hot pairs from the sparse patterns repeat as identical
// requests, exercising the daemon's cache and request coalescing.
//
// Soak gates (exit 1 when violated): any 5xx or transport error, shed
// rate above -max-shed-rate, p99 above the -baseline report's p99 times
// -p99-ratio, and — with -require-coalesce — a server that reports no
// cache hits or coalesced requests at all. -json archives the full
// report (client stats plus the daemon's /metrics snapshot).
//
// Ring mode: -addrs lists a bgqd cluster's replicas ("id=addr" pairs,
// or bare addresses that get IDs r0, r1, ...; the IDs must match the
// daemons' -replica-id flags) and routes every request over the same
// consistent-hash ring the cluster uses, failing over to successors
// when a replica dies. -fault-every posts a seeded fault event
// alongside every Nth request so the gossiped fault-epoch plane is
// exercised under load, and the report gains a per-replica breakdown
// (requests, shed, p99, share of traffic). Ring gates: any response
// served with a stale fault-epoch vector fails the run, and
// -max-replica-share fails it when one replica answers more than that
// fraction of requests (a hot shard). Telemetry artifacts (-trace-out,
// -slo-out, -require-slo) and -sessions are not supported in ring mode.
//
// -sessions N switches bgqload into the chaos-soak driver for resilient
// transfer sessions: N concurrent sessions with seeded fault campaigns,
// forced disconnects, server-side fault events, and optional combining,
// every report byte-verified against a direct-run oracle. Gates (exit 1
// when violated): zero lost, zero duplicated, zero mismatched sessions,
// all N completed, plus the -min-resumes / -min-pushed-faults floors.
// -json archives the session report (the SESSIONS_<date>.json format).
//
// Telemetry: -trace-out enables a client-side wall recorder, stamps
// every request with a trace ID, and after the run merges the client
// trace with the daemon's /v1/trace snapshot into one Perfetto file —
// client retry spans over server queue/compute/session spans over the
// sim-clock engine timeline, correlated by trace ID (the daemon needs
// -trace-events > 0 for its half; without it the file carries the
// client half alone). -slo-out archives the daemon's /v1/slo verdict
// snapshot (the SLO_<date>.json artifact), and -require-slo turns the
// verdicts into a gate: any objective with a nonzero cumulative breach
// count — or a daemon with no objectives configured — fails the run.
// Two helpers cover daemon restarts: `bgqload -dump-trace -addr ...
// -trace-out pre.json` fetches a daemon's /v1/trace snapshot and exits,
// and -trace-extra pre.json merges that dump into the final artifact —
// the chaos soak uses the pair to preserve the first daemon's server
// spans across its SIGTERM.
//
// -selftest spins an in-process daemon on a loopback port and runs the
// load against it — no external bgqd needed; used by `make verify`.
// The selftest daemon enables tracing and a generous objective set
// when -trace-out / -require-slo ask for them. Flags are validated up
// front; a bad flag exits 2 with a one-line error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/loadgen"
	"bgqflow/internal/obs"
	"bgqflow/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon address: host:port, http://..., or unix:///path")
	addrs := flag.String("addrs", "", "comma-separated cluster replicas (id=addr pairs or bare addresses); enables ring mode")
	faultEvery := flag.Int("fault-every", 0, "post a seeded fault event alongside every Nth request (0 disables)")
	maxReplicaShare := flag.Float64("max-replica-share", 0, "ring gate: fail when one replica answers more than this fraction of requests (0 disables)")
	duration := flag.Duration("duration", 30*time.Second, "load duration")
	mode := flag.String("mode", "open", "load mode: open (fixed-rate arrivals) or closed (fixed workers)")
	rps := flag.Float64("rps", 500, "open-loop arrival rate (requests/sec)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	seed := flag.Int64("seed", 1, "request-mix seed")
	shape := flag.String("shape", "", "torus shape for plan requests (default 2x2x4x4x2)")
	patterns := flag.String("patterns", "", "comma-separated pair patterns (default all: uniform,neighbor,shift,sparse)")
	aggEvery := flag.Int("agg-every", 0, "make every Nth request an aggregation plan (0 = none)")
	jsonOut := flag.String("json", "", "write the full report JSON to this file")
	baseline := flag.String("baseline", "", "previous report to gate p99 against")
	p99Ratio := flag.Float64("p99-ratio", 5, "fail when p99 exceeds baseline p99 times this ratio")
	maxShed := flag.Float64("max-shed-rate", 0.5, "fail when shed/requests exceeds this (0 disables)")
	requireCoalesce := flag.Bool("require-coalesce", false, "fail when the server reports zero cache hits and zero coalesced requests")
	selftest := flag.Bool("selftest", false, "spin an in-process daemon on loopback and load it (ignores -addr)")
	sessions := flag.Int("sessions", 0, "run N resilient transfer sessions instead of the plan-request mix (0 = plan mode)")
	pattern := flag.String("pattern", "", "session-mode pair pattern (default burst)")
	paceUS := flag.Int("pace-us", 500, "session-mode pacing per safe point, microseconds")
	campaignEvery := flag.Int("campaign-every", 5, "give every Nth session a seeded fault campaign (0 disables)")
	batchEvery := flag.Int("batch-every", 0, "mark every Nth session combinable (0 disables; needs a daemon batch window)")
	dropEvery := flag.Int("drop-every", 4, "force a disconnect every N frames on every third session (0 disables)")
	faultEvents := flag.Int("fault-events", 2, "server-side fault events to post while sessions run (0 disables)")
	noVerify := flag.Bool("no-verify", false, "skip the byte-exact oracle replay of every session report")
	sessionTimeout := flag.Duration("session-timeout", 2*time.Minute, "per-session budget")
	minResumes := flag.Int("min-resumes", 0, "session gate: fail with fewer than N stream resumes")
	minPushed := flag.Int("min-pushed-faults", 0, "session gate: fail with fewer than N pushed mid-session faults")
	traceOut := flag.String("trace-out", "", "write the merged client+daemon Perfetto trace to this file")
	traceExtra := flag.String("trace-extra", "", "extra Perfetto snapshot to merge into -trace-out (e.g. a pre-restart daemon dump)")
	sloOut := flag.String("slo-out", "", "write the daemon's SLO verdict snapshot to this file")
	requireSLO := flag.Bool("require-slo", false, "fail when any daemon SLO recorded a breach (or no objectives are configured)")
	dumpTrace := flag.Bool("dump-trace", false, "fetch the daemon's /v1/trace snapshot, write it to -trace-out, and exit")
	flag.Parse()

	if *dumpTrace {
		if len(flag.Args()) > 0 {
			fmt.Fprintf(os.Stderr, "bgqload: unexpected arguments: %v\n", flag.Args())
			os.Exit(2)
		}
		if *addr == "" || *traceOut == "" {
			fmt.Fprintln(os.Stderr, "bgqload: -dump-trace needs -addr and -trace-out")
			os.Exit(2)
		}
		client, err := serve.NewClient(*addr)
		if err != nil {
			fatal("%v", err)
		}
		raw, err := client.TraceJSON(context.Background())
		if err != nil {
			fatal("dump-trace: %v", err)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			fatal("dump-trace: %v", err)
		}
		fmt.Printf("bgqload: daemon trace dumped to %s\n", *traceOut)
		return
	}

	if *sessions != 0 {
		if *addrs != "" {
			fmt.Fprintln(os.Stderr, "bgqload: -sessions does not support ring mode (-addrs)")
			os.Exit(2)
		}
		// -concurrency defaults to 8 for the plan mix; in session mode an
		// unset flag means "all sessions at once" (the peak-concurrency
		// soak shape), so only an explicit value caps the fleet.
		sessConc := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "concurrency" {
				sessConc = *concurrency
			}
		})
		sopts := loadgen.SessionOptions{
			Sessions:      *sessions,
			Concurrency:   sessConc,
			Seed:          *seed,
			Shape:         *shape,
			Pattern:       *pattern,
			PaceUS:        *paceUS,
			CampaignEvery: *campaignEvery,
			BatchEvery:    *batchEvery,
			DropEvery:     *dropEvery,
			FaultEvents:   *faultEvents,
			Verify:        !*noVerify,
			Timeout:       *sessionTimeout,
		}
		if err := validateSessions(*addr, *selftest, sopts, *minResumes, *minPushed, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "bgqload: %v\n", err)
			os.Exit(2)
		}
		runSessionMode(*addr, *selftest, sopts, *minResumes, *minPushed, *jsonOut,
			telemetryOpts{traceOut: *traceOut, traceExtra: *traceExtra, sloOut: *sloOut, requireSLO: *requireSLO})
		return
	}

	opts := loadgen.Options{
		Mode:        *mode,
		Duration:    *duration,
		RPS:         *rps,
		Concurrency: *concurrency,
		Seed:        *seed,
		Shape:       *shape,
		AggEvery:    *aggEvery,
		FaultEvery:  *faultEvery,
	}
	if *patterns != "" {
		opts.Patterns = strings.Split(*patterns, ",")
	}
	members, baseP99, err := validate(*addr, *addrs, *selftest, *baseline, *p99Ratio, *maxShed, *maxReplicaShare,
		telemetryOpts{traceOut: *traceOut, traceExtra: *traceExtra, sloOut: *sloOut, requireSLO: *requireSLO}, opts, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgqload: %v\n", err)
		os.Exit(2)
	}

	tel := telemetryOpts{traceOut: *traceOut, traceExtra: *traceExtra, sloOut: *sloOut, requireSLO: *requireSLO}
	var (
		client loadgen.Planner
		ringC  *serve.RingClient
		direct *serve.Client
		target string
	)
	if *addrs != "" {
		ringC, err = serve.NewRingClient(members)
		if err != nil {
			fatal("%v", err)
		}
		up := ringC.Health(context.Background())
		if len(up) == 0 {
			fatal("no ring replica reachable (of %d in -addrs)", len(members))
		}
		fmt.Printf("bgqload: ring of %d replicas, %d up (%s)\n", len(members), len(up), strings.Join(up, ", "))
		client = ringC
		target = fmt.Sprintf("ring[%d]", len(members))
	} else {
		target = *addr
		var cleanup func()
		if *selftest {
			target, cleanup, err = startInProcess(tel.selftestConfig(serve.Config{}))
			if err != nil {
				fatal("selftest: %v", err)
			}
			defer cleanup()
		}
		direct, err = serve.NewClient(target)
		if err != nil {
			fatal("%v", err)
		}
		tel.installTracer(direct)
		if err := direct.Health(context.Background()); err != nil {
			fatal("daemon not reachable at %s: %v", target, err)
		}
		client = direct
	}

	rep, err := loadgen.Run(context.Background(), client, opts)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("bgqload: %s %v against %s: %d requests (%.0f/s), %d ok, %d shed (%.1f%%), %d 4xx, %d 5xx, %d transport errors\n",
		rep.Mode, *duration, target, rep.Requests, rep.AchievedRPS,
		rep.OK, rep.Shed, rep.ShedRate*100, rep.Status4xx, rep.Status5xx, rep.TransportErrors)
	fmt.Printf("bgqload: latency p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms; server computed %d plans, %d cache hits, %d coalesced (%.0f%% saved)\n",
		rep.Latency.P50MS, rep.Latency.P90MS, rep.Latency.P99MS, rep.Latency.MaxMS,
		rep.PlansComputed, rep.CacheHits, rep.Coalesced, rep.CoalesceRate*100)
	if len(rep.Phases) > 0 {
		fmt.Printf("bgqload: phase p99 (ms): connect %.2f, queue %.2f, compute %.2f, stream %.2f\n",
			rep.Phases["connect"].P99MS, rep.Phases["queue"].P99MS,
			rep.Phases["compute"].P99MS, rep.Phases["stream"].P99MS)
	}
	if ringC != nil {
		ids := make([]string, 0, len(rep.ByReplica))
		for id := range rep.ByReplica {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			rs := rep.ByReplica[id]
			fmt.Printf("bgqload: replica %s: %d requests (%.0f%% share), %d ok, %d shed, %d errors, p99 %.2fms\n",
				id, rs.Requests, rs.Share*100, rs.OK, rs.Shed, rs.Errors, rs.Latency.P99MS)
		}
		fmt.Printf("bgqload: ring: %d faults posted, %d fault errors, %d stale responses served\n",
			rep.FaultsPosted, rep.FaultErrors, rep.StaleServed)
	}
	if direct != nil {
		tel.writeArtifacts(direct, rep.SLO)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal("json: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal("json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("bgqload: report written to %s\n", *jsonOut)
	}

	crit := loadgen.Criteria{
		MaxShedRate:     *maxShed,
		RequireCoalesce: *requireCoalesce,
		MinRequests:     1,
		RequireSLO:      *requireSLO,
		MaxReplicaShare: *maxReplicaShare,
	}
	if baseP99 > 0 {
		crit.MaxP99MS = baseP99 * *p99Ratio
	}
	if err := rep.Check(crit); err != nil {
		fatal("%v", err)
	}
	fmt.Println("bgqload: all soak gates passed")
}

// validate rejects bad flags up front (exit 2), reading the baseline's
// p99 and parsing the ring membership while at it so a missing or
// corrupt baseline fails before the 30-second load runs, not after.
func validate(addr, addrs string, selftest bool, baseline string, p99Ratio, maxShed, maxReplicaShare float64,
	tel telemetryOpts, opts loadgen.Options, extra []string) (members []cluster.Member, baseP99 float64, err error) {
	if len(extra) > 0 {
		return nil, 0, fmt.Errorf("unexpected arguments: %v", extra)
	}
	if addrs != "" {
		if addr != "" {
			return nil, 0, fmt.Errorf("-addr and -addrs are mutually exclusive")
		}
		if selftest {
			return nil, 0, fmt.Errorf("-selftest and -addrs are mutually exclusive")
		}
		if tel.traceOut != "" || tel.sloOut != "" || tel.requireSLO {
			return nil, 0, fmt.Errorf("telemetry artifacts (-trace-out/-slo-out/-require-slo) are not supported in ring mode")
		}
		if members, err = parseMembers(addrs); err != nil {
			return nil, 0, err
		}
	} else if addr == "" && !selftest {
		return nil, 0, fmt.Errorf("-addr is required (or use -selftest / -addrs)")
	}
	if p99Ratio <= 0 {
		return nil, 0, fmt.Errorf("-p99-ratio must be > 0, got %g", p99Ratio)
	}
	if maxShed < 0 || maxShed > 1 {
		return nil, 0, fmt.Errorf("-max-shed-rate must be in [0,1], got %g", maxShed)
	}
	if maxReplicaShare < 0 || maxReplicaShare > 1 {
		return nil, 0, fmt.Errorf("-max-replica-share must be in [0,1], got %g", maxReplicaShare)
	}
	// Validate mode/shape/patterns/duration via the loadgen mix builder.
	if _, err := loadgen.BuildMix(opts); err != nil {
		return nil, 0, err
	}
	if baseline != "" {
		f, err := os.Open(baseline)
		if err != nil {
			return nil, 0, fmt.Errorf("baseline: %v", err)
		}
		defer f.Close()
		base, err := loadgen.ReadReport(f)
		if err != nil {
			return nil, 0, fmt.Errorf("baseline %s: %v", baseline, err)
		}
		if base.Latency.P99MS <= 0 {
			return nil, 0, fmt.Errorf("baseline %s has no p99 latency", baseline)
		}
		baseP99 = base.Latency.P99MS
	}
	return members, baseP99, nil
}

// parseMembers turns the -addrs list into ring members. Entries are
// "id=addr" pairs; a bare address gets the positional ID r<i>. The IDs
// must match the daemons' -replica-id flags — they are what the ring
// hashes, so mismatched IDs would route every request to the wrong
// replica's cache shard (still correct, just cold).
func parseMembers(addrs string) ([]cluster.Member, error) {
	var members []cluster.Member
	seen := make(map[string]bool)
	for i, entry := range strings.Split(addrs, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-addrs has an empty entry")
		}
		id, a, ok := strings.Cut(entry, "=")
		if !ok {
			id, a = fmt.Sprintf("r%d", i), entry
		}
		if id == "" || a == "" {
			return nil, fmt.Errorf("-addrs entry %q: want id=addr", entry)
		}
		if seen[id] {
			return nil, fmt.Errorf("-addrs has duplicate replica ID %q", id)
		}
		seen[id] = true
		members = append(members, cluster.Member{ID: id, Addr: a})
	}
	return members, nil
}

// validateSessions rejects bad session-mode flags up front (exit 2).
func validateSessions(addr string, selftest bool, o loadgen.SessionOptions, minResumes, minPushed int, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments: %v", extra)
	}
	if addr == "" && !selftest {
		return fmt.Errorf("-addr is required (or use -selftest)")
	}
	if minResumes < 0 {
		return fmt.Errorf("-min-resumes must be >= 0, got %d", minResumes)
	}
	if minPushed < 0 {
		return fmt.Errorf("-min-pushed-faults must be >= 0, got %d", minPushed)
	}
	return loadgen.ValidateSessionOptions(o)
}

// runSessionMode drives the resilient-session chaos soak and applies
// its gates.
func runSessionMode(addr string, selftest bool, o loadgen.SessionOptions, minResumes, minPushed int, jsonOut string, tel telemetryOpts) {
	target := addr
	if selftest {
		// The in-process daemon gets a batch window so -batch-every has
		// something to combine against; it is inert without Batch requests.
		t, cleanup, err := startInProcess(tel.selftestConfig(serve.Config{BatchWindow: 50 * time.Millisecond}))
		if err != nil {
			fatal("selftest: %v", err)
		}
		defer cleanup()
		target = t
	}
	client, err := serve.NewClient(target)
	if err != nil {
		fatal("%v", err)
	}
	tel.installTracer(client)
	if err := client.Health(context.Background()); err != nil {
		fatal("daemon not reachable at %s: %v", target, err)
	}

	rep, err := loadgen.RunSessions(context.Background(), client, o)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("bgqload: %d sessions (%s/%s, seed %d) against %s in %.1fs: %d completed, %d failed, %d lost, %d mismatched, %d duplicated\n",
		rep.Sessions, rep.Shape, rep.Pattern, rep.Seed, target, rep.WallSec,
		rep.Completed, rep.Failed, rep.Lost, rep.Mismatched, rep.Duplicated)
	fmt.Printf("bgqload: resilience: %d resumes, %d restarts, %d pushed faults, %d combined sessions, peak %d concurrent, %d fault events posted\n",
		rep.Resumes, rep.Restarts, rep.PushedFaults, rep.BatchedMembers, rep.PeakConcurrent, rep.FaultsPosted)

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fatal("json: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal("json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("bgqload: session report written to %s\n", jsonOut)
	}

	tel.writeArtifacts(client, rep.SLO)

	if err := rep.Check(loadgen.SessionCriteria{
		MinCompleted:    rep.Sessions,
		MinResumes:      minResumes,
		MinPushedFaults: minPushed,
		RequireVerified: o.Verify,
		RequireSLO:      tel.requireSLO,
	}); err != nil {
		fatal("%v", err)
	}
	fmt.Println("bgqload: all session gates passed")
}

// telemetryOpts bundles the cross-mode trace/SLO flags.
type telemetryOpts struct {
	traceOut   string
	traceExtra string
	sloOut     string
	requireSLO bool
}

// selftestConfig upgrades the in-process daemon with tracing and a
// generous objective set when the flags ask for telemetry — a selftest
// must be able to exercise the whole plane without an external bgqd.
func (t telemetryOpts) selftestConfig(cfg serve.Config) serve.Config {
	if t.traceOut != "" {
		cfg.TraceEvents = 1 << 16
	}
	if t.requireSLO || t.sloOut != "" {
		cfg.StatsWindow = 10 * time.Second
		cfg.SLOs = []obs.SLOSpec{
			{Name: "plan_p99", Kind: obs.SLOLatencyP99,
				Metric: "serve/window/plan_latency_ms", Threshold: 60_000},
			{Name: "shed_ratio", Kind: obs.SLORatioMax,
				Metric: "serve/window/shed", Denominator: "serve/window/requests", Threshold: 0.9},
			{Name: "resume_success", Kind: obs.SLORatioMin,
				Metric: "serve/window/resume_hits", Denominator: "serve/window/resumes", Threshold: 0.2},
		}
	}
	return cfg
}

// installTracer attaches a client-side wall recorder when -trace-out
// asks for the merged trace artifact.
func (t telemetryOpts) installTracer(client *serve.Client) {
	if t.traceOut != "" {
		rec := obs.NewWallRecorder(1 << 16)
		rec.SetProcessName("bgqload (wall clock)")
		client.SetTracer(rec)
	}
}

// writeArtifacts emits the -trace-out and -slo-out files after a run.
// Artifacts are written before the gates are applied, so a failed soak
// still leaves its trace behind for diagnosis.
func (t telemetryOpts) writeArtifacts(client *serve.Client, slo *obs.SLOSnapshot) {
	if t.traceOut != "" {
		var clientTrace strings.Builder
		if err := client.Tracer().WriteChromeTrace(&clientTrace); err != nil {
			fatal("trace: %v", err)
		}
		parts := [][]byte{[]byte(clientTrace.String())}
		// The daemon's half is best effort: a daemon without -trace-events
		// still yields a usable client-side trace.
		if serverTrace, err := client.TraceJSON(context.Background()); err == nil {
			parts = append(parts, serverTrace)
		} else {
			fmt.Fprintf(os.Stderr, "bgqload: daemon trace unavailable (%v); writing client half only\n", err)
		}
		// An extra snapshot (typically a -dump-trace of a daemon that was
		// since restarted) rides along best-effort: the chaos soak dumps
		// the first daemon's ring just before the SIGTERM so the archive
		// keeps the server spans that would otherwise die with it.
		if t.traceExtra != "" {
			if extra, err := os.ReadFile(t.traceExtra); err == nil {
				parts = append(parts, extra)
			} else {
				fmt.Fprintf(os.Stderr, "bgqload: -trace-extra unreadable (%v); skipping\n", err)
			}
		}
		f, err := os.Create(t.traceOut)
		if err != nil {
			fatal("trace: %v", err)
		}
		if err := obs.MergeChromeTraces(f, parts...); err != nil {
			f.Close()
			fatal("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("bgqload: merged trace written to %s (open in ui.perfetto.dev)\n", t.traceOut)
	}
	if t.sloOut != "" {
		if slo == nil {
			fatal("slo: daemon served no SLO snapshot — configure bgqd -slo-* objectives")
		}
		f, err := os.Create(t.sloOut)
		if err != nil {
			fatal("slo: %v", err)
		}
		if err := slo.WriteJSON(f); err != nil {
			f.Close()
			fatal("slo: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("slo: %v", err)
		}
		fmt.Printf("bgqload: SLO snapshot written to %s\n", t.sloOut)
	}
}

// startInProcess runs a daemon inside this process on a loopback port.
func startInProcess(cfg serve.Config) (addr string, cleanup func(), err error) {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	cleanup = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}
	return ln.Addr().String(), cleanup, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bgqload: "+format+"\n", args...)
	os.Exit(1)
}
