// Command bgqload drives a bgqd plan-serving daemon with a seeded,
// deterministic request mix and reports latency, throughput, shed-rate,
// and coalescing statistics. It is the soak/stress driver behind
// `make soak`.
//
// Usage:
//
//	bgqload -addr host:port|unix:///path [-duration 30s] [-mode open|closed]
//	        [-rps 500] [-concurrency 8] [-seed 1] [-shape 2x2x4x4x2]
//	        [-patterns uniform,neighbor,shift,sparse] [-agg-every N]
//	        [-json out.json] [-baseline prev.json] [-p99-ratio 5]
//	        [-max-shed-rate 0.5] [-require-coalesce] [-selftest]
//
// Open-loop mode issues requests on a fixed-rate clock (-rps); closed
// loop keeps -concurrency workers saturated. The mix is deterministic in
// -seed: hot pairs from the sparse patterns repeat as identical
// requests, exercising the daemon's cache and request coalescing.
//
// Soak gates (exit 1 when violated): any 5xx or transport error, shed
// rate above -max-shed-rate, p99 above the -baseline report's p99 times
// -p99-ratio, and — with -require-coalesce — a server that reports no
// cache hits or coalesced requests at all. -json archives the full
// report (client stats plus the daemon's /metrics snapshot).
//
// -selftest spins an in-process daemon on a loopback port and runs the
// load against it — no external bgqd needed; used by `make verify`.
// Flags are validated up front; a bad flag exits 2 with a one-line
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"bgqflow/internal/loadgen"
	"bgqflow/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon address: host:port, http://..., or unix:///path")
	duration := flag.Duration("duration", 30*time.Second, "load duration")
	mode := flag.String("mode", "open", "load mode: open (fixed-rate arrivals) or closed (fixed workers)")
	rps := flag.Float64("rps", 500, "open-loop arrival rate (requests/sec)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	seed := flag.Int64("seed", 1, "request-mix seed")
	shape := flag.String("shape", "", "torus shape for plan requests (default 2x2x4x4x2)")
	patterns := flag.String("patterns", "", "comma-separated pair patterns (default all: uniform,neighbor,shift,sparse)")
	aggEvery := flag.Int("agg-every", 0, "make every Nth request an aggregation plan (0 = none)")
	jsonOut := flag.String("json", "", "write the full report JSON to this file")
	baseline := flag.String("baseline", "", "previous report to gate p99 against")
	p99Ratio := flag.Float64("p99-ratio", 5, "fail when p99 exceeds baseline p99 times this ratio")
	maxShed := flag.Float64("max-shed-rate", 0.5, "fail when shed/requests exceeds this (0 disables)")
	requireCoalesce := flag.Bool("require-coalesce", false, "fail when the server reports zero cache hits and zero coalesced requests")
	selftest := flag.Bool("selftest", false, "spin an in-process daemon on loopback and load it (ignores -addr)")
	flag.Parse()

	opts := loadgen.Options{
		Mode:        *mode,
		Duration:    *duration,
		RPS:         *rps,
		Concurrency: *concurrency,
		Seed:        *seed,
		Shape:       *shape,
		AggEvery:    *aggEvery,
	}
	if *patterns != "" {
		opts.Patterns = strings.Split(*patterns, ",")
	}
	baseP99, err := validate(*addr, *selftest, *baseline, *p99Ratio, *maxShed, opts, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bgqload: %v\n", err)
		os.Exit(2)
	}

	target := *addr
	var cleanup func()
	if *selftest {
		target, cleanup, err = startInProcess()
		if err != nil {
			fatal("selftest: %v", err)
		}
		defer cleanup()
	}
	client, err := serve.NewClient(target)
	if err != nil {
		fatal("%v", err)
	}
	if err := client.Health(context.Background()); err != nil {
		fatal("daemon not reachable at %s: %v", target, err)
	}

	rep, err := loadgen.Run(context.Background(), client, opts)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("bgqload: %s %v against %s: %d requests (%.0f/s), %d ok, %d shed (%.1f%%), %d 4xx, %d 5xx, %d transport errors\n",
		rep.Mode, *duration, target, rep.Requests, rep.AchievedRPS,
		rep.OK, rep.Shed, rep.ShedRate*100, rep.Status4xx, rep.Status5xx, rep.TransportErrors)
	fmt.Printf("bgqload: latency p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms; server computed %d plans, %d cache hits, %d coalesced (%.0f%% saved)\n",
		rep.Latency.P50MS, rep.Latency.P90MS, rep.Latency.P99MS, rep.Latency.MaxMS,
		rep.PlansComputed, rep.CacheHits, rep.Coalesced, rep.CoalesceRate*100)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal("json: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal("json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("bgqload: report written to %s\n", *jsonOut)
	}

	crit := loadgen.Criteria{
		MaxShedRate:     *maxShed,
		RequireCoalesce: *requireCoalesce,
		MinRequests:     1,
	}
	if baseP99 > 0 {
		crit.MaxP99MS = baseP99 * *p99Ratio
	}
	if err := rep.Check(crit); err != nil {
		fatal("%v", err)
	}
	fmt.Println("bgqload: all soak gates passed")
}

// validate rejects bad flags up front (exit 2), reading the baseline's
// p99 while at it so a missing or corrupt baseline fails before the
// 30-second load runs, not after.
func validate(addr string, selftest bool, baseline string, p99Ratio, maxShed float64, opts loadgen.Options, extra []string) (baseP99 float64, err error) {
	if len(extra) > 0 {
		return 0, fmt.Errorf("unexpected arguments: %v", extra)
	}
	if addr == "" && !selftest {
		return 0, fmt.Errorf("-addr is required (or use -selftest)")
	}
	if p99Ratio <= 0 {
		return 0, fmt.Errorf("-p99-ratio must be > 0, got %g", p99Ratio)
	}
	if maxShed < 0 || maxShed > 1 {
		return 0, fmt.Errorf("-max-shed-rate must be in [0,1], got %g", maxShed)
	}
	// Validate mode/shape/patterns/duration via the loadgen mix builder.
	if _, err := loadgen.BuildMix(opts); err != nil {
		return 0, err
	}
	if baseline != "" {
		f, err := os.Open(baseline)
		if err != nil {
			return 0, fmt.Errorf("baseline: %v", err)
		}
		defer f.Close()
		base, err := loadgen.ReadReport(f)
		if err != nil {
			return 0, fmt.Errorf("baseline %s: %v", baseline, err)
		}
		if base.Latency.P99MS <= 0 {
			return 0, fmt.Errorf("baseline %s has no p99 latency", baseline)
		}
		baseP99 = base.Latency.P99MS
	}
	return baseP99, nil
}

// startInProcess runs a daemon inside this process on a loopback port.
func startInProcess() (addr string, cleanup func(), err error) {
	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	cleanup = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}
	return ln.Addr().String(), cleanup, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bgqload: "+format+"\n", args...)
	os.Exit(1)
}
