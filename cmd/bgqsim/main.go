// Command bgqsim runs a declarative scenario (JSON) on the BG/Q
// simulator and prints the outcome.
//
// Usage:
//
//	bgqsim scenario.json
//	bgqsim -            # read the scenario from stdin
//
// Example scenario — the paper's Pattern 2 burst on 32K cores under
// topology-aware aggregation:
//
//	{
//	  "shape": "4x4x4x16x2",
//	  "seed": 7,
//	  "io": {"workload": "pattern2", "approach": "topology-aware"}
//	}
//
// Example transfer scenario — Fig. 5's corner pair with 4 proxies:
//
//	{
//	  "shape": "2x2x4x4x2",
//	  "transfer": {"kind": "pair", "src": 0, "dst": 127,
//	               "bytes": 67108864, "proxies": 4}
//	}
//
// Inputs are validated up front, matching bgqbench: a missing or extra
// argument, an unreadable scenario file, invalid scenario JSON, or an
// uncreatable -trace path exits 2 with a one-line error before the
// simulation starts. Runtime failures exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bgqflow/internal/scenario"
)

// validateAndLoad checks every input before any simulation work: the
// argument list, the scenario source (readable, parseable, valid), and
// the -trace destination (writable directory). Errors exit 2.
func validateAndLoad(args []string, traceOut string) (scenario.Config, error) {
	if len(args) != 1 {
		return scenario.Config{}, fmt.Errorf("usage: bgqsim [-trace out.json] <scenario.json | ->")
	}
	var in io.Reader
	if args[0] == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			return scenario.Config{}, err
		}
		defer f.Close()
		in = f
	}
	cfg, err := scenario.Load(in)
	if err != nil {
		return scenario.Config{}, err
	}
	if traceOut != "" {
		if dir := filepath.Dir(traceOut); dir != "" {
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				return scenario.Config{}, fmt.Errorf("trace: directory %s does not exist", dir)
			}
		}
		cfg.CollectTrace = true
	}
	return cfg, nil
}

func main() {
	traceOut := flag.String("trace", "", "write a JSON flow-timeline trace to this file")
	flag.Parse()
	cfg, err := validateAndLoad(flag.Args(), *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgqsim:", err)
		os.Exit(2)
	}
	res, err := scenario.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" && res.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:      %s (%d flows)\n", *traceOut, len(res.Trace.Flows))
	}
	fmt.Printf("mode:       %s\n", res.Mode)
	fmt.Printf("throughput: %.3f GB/s\n", res.GBps)
	fmt.Printf("makespan:   %.3f ms\n", res.MakespanMS)
	if res.UplinkImbalance > 0 {
		fmt.Printf("ION uplink max/mean: %.2f\n", res.UplinkImbalance)
	}
	for _, n := range res.Notes {
		fmt.Printf("note:       %s\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgqsim:", err)
	os.Exit(1)
}
